//! # flex-mgl — Multi-row Global Legalization
//!
//! A from-scratch implementation of the MGL mixed-cell-height legalization algorithm
//! (Li et al., TCAD'22 \[18\] in the paper's references), the algorithmic substrate that FLEX
//! accelerates. The flow follows Fig. 3(e) of the paper:
//!
//! 1. **input & pre-move** — snap cells to their nearest designated rows (tolerating overlaps),
//! 2. **process ordering** — decide the order in which unlegalized target cells are handled,
//! 3. **define localRegion** — extract the localSegments / localCells around the target,
//! 4. **FOP** — find the optimal placement position by evaluating every insertion point with
//!    displacement curves, and
//! 5. **insert & update** — commit the target and shift the affected cells.
//!
//! Modules:
//!
//! * [`config`] — tuning knobs selecting the shifting algorithm, FOP variant and ordering.
//! * [`region`] — windows, localSegments, localCells and localRegions (Sec. 2.2.1).
//! * [`insertion`] — insertion intervals and insertion points (Sec. 2.2.2).
//! * [`curve`] — displacement curves and breakpoints (Sec. 2.2.3).
//! * [`shift`] — the original multi-pass cell-shifting algorithm (Fig. 6, Algorithm 3).
//! * [`sacs`] — the Sort-Ahead Cell Shifting algorithm of FLEX (Fig. 6, Algorithm 4).
//! * [`fop`] — finding the optimal placement position, in both the original and the
//!   reorganized bidirectional-traversal form (Fig. 5).
//! * [`ordering`] — processing-order strategies, including FLEX's sliding-window ordering.
//! * [`stats`] — operator-level runtime statistics and the work trace consumed by the FPGA
//!   performance model in `flex-core`.
//! * [`legalize`] — the end-to-end MGL legalizer.
//! * [`parallel`] — the deterministic region-sharded parallel engine built on top of it.
//! * [`api`] — the unified [`api::Legalizer`] trait + [`api::LegalizeReport`] every engine in
//!   the workspace (including the baselines and the FLEX accelerator) implements.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod config;
pub mod curve;
pub mod fop;
pub mod insertion;
pub mod legalize;
pub mod ordering;
pub mod parallel;
pub mod region;
pub mod sacs;
pub mod shift;
pub mod stats;

pub use api::{DisplacementSummary, LegalizeReport, Legalizer, RuntimeBreakdown};
pub use config::{FopVariant, MglConfig, OrderingStrategy, ShiftAlgorithm};
pub use fop::FopScratch;
pub use legalize::{LegalizeResult, MglLegalizer};
pub use parallel::{ParallelLegalizeResult, ParallelMglLegalizer, ShardStats};
pub use region::{LocalCell, LocalRegion, LocalSegment};
pub use stats::{FopOpStats, RegionWork, WorkTrace};
