//! Property tests for the log-bucketed histogram: merge is exactly associative and
//! commutative, merging equals bulk recording, and quantile estimates respect the
//! `true ≤ est ≤ true·(1 + 1/SUB)` error bound the bucket layout promises.

use flex_obs::hist::{Histogram, SUB};
use proptest::prelude::*;

/// Values spanning the interesting ranges: exact unit buckets, mid-range, and huge.
fn widen(raw: &[u64]) -> Vec<u64> {
    raw.iter()
        .map(|&v| {
            // spread the uniform draw across magnitudes: low 6 bits pick a shift
            let shift = (v & 0x3f) as u32;
            (v >> 6).checked_shl(shift).unwrap_or(v).max(v & 0xff)
        })
        .collect()
}

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Exact quantile of a value multiset, matching the histogram's rank convention
/// (rank `⌈q·n⌉`, 1-based, clamped).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as f64;
    let rank = ((q * n).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// merge(a, b) == merge(b, a), field for field.
    #[test]
    fn merge_is_commutative(
        raw_a in prop::collection::vec(0u64..u64::MAX, 0..40),
        raw_b in prop::collection::vec(0u64..u64::MAX, 0..40),
    ) {
        let (va, vb) = (widen(&raw_a), widen(&raw_b));
        let mut ab = hist_of(&va);
        ab.merge(&hist_of(&vb));
        let mut ba = hist_of(&vb);
        ba.merge(&hist_of(&va));
        prop_assert_eq!(ab, ba);
    }

    /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
    #[test]
    fn merge_is_associative(
        raw_a in prop::collection::vec(0u64..u64::MAX, 0..30),
        raw_b in prop::collection::vec(0u64..u64::MAX, 0..30),
        raw_c in prop::collection::vec(0u64..u64::MAX, 0..30),
    ) {
        let (va, vb, vc) = (widen(&raw_a), widen(&raw_b), widen(&raw_c));
        let mut left = hist_of(&va);
        left.merge(&hist_of(&vb));
        left.merge(&hist_of(&vc));
        let mut bc = hist_of(&vb);
        bc.merge(&hist_of(&vc));
        let mut right = hist_of(&va);
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Merging shards is indistinguishable from recording every value into one histogram
    /// — the contract that makes per-thread accumulation sound.
    #[test]
    fn merge_equals_bulk_recording(
        raw_a in prop::collection::vec(0u64..u64::MAX, 0..40),
        raw_b in prop::collection::vec(0u64..u64::MAX, 0..40),
    ) {
        let (va, vb) = (widen(&raw_a), widen(&raw_b));
        let mut merged = hist_of(&va);
        merged.merge(&hist_of(&vb));
        let mut all: Vec<u64> = va.clone();
        all.extend_from_slice(&vb);
        prop_assert_eq!(merged, hist_of(&all));
    }

    /// Quantile estimates sit in `[true, true·(1 + 1/SUB)]` for every probed quantile.
    #[test]
    fn quantile_error_is_bounded(
        raw in prop::collection::vec(0u64..u64::MAX, 1..120),
        q in 0.0f64..1.0,
    ) {
        let values = widen(&raw);
        let h = hist_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [q, 0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let truth = exact_quantile(&sorted, q);
            let est = h.value_at_quantile(q);
            prop_assert!(est >= truth, "q={q}: est {est} below true {truth}");
            // upper bound: est ≤ true·(1 + 1/SUB), computed in u128 to avoid overflow
            let limit = truth as u128 + (truth as u128) / SUB as u128;
            prop_assert!(
                (est as u128) <= limit.max(truth as u128),
                "q={q}: est {est} above bound {limit} (true {truth})"
            );
        }
    }

    /// min/max/count/sum survive arbitrary merge trees.
    #[test]
    fn scalar_stats_survive_merges(
        raw in prop::collection::vec(0u64..u64::MAX, 1..60),
        split in 0usize..60,
    ) {
        let values = widen(&raw);
        let cut = split.min(values.len());
        let mut merged = hist_of(&values[..cut]);
        merged.merge(&hist_of(&values[cut..]));
        prop_assert_eq!(merged.count(), values.len() as u64);
        prop_assert_eq!(merged.min(), *values.iter().min().unwrap());
        prop_assert_eq!(merged.max(), *values.iter().max().unwrap());
        let sum = values.iter().fold(0u64, |a, &v| a.saturating_add(v));
        prop_assert_eq!(merged.sum(), sum);
    }
}

#[test]
fn empty_merge_is_identity() {
    let mut h = Histogram::new();
    h.record(42);
    let before = h.clone();
    h.merge(&Histogram::new());
    assert_eq!(h, before);
}
