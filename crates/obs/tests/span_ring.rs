//! Concurrency tests for the span ring: writers never block, drop-oldest holds under
//! contention, and live readers only ever observe intact events.

use flex_obs::spans::{intern, SpanRing};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[test]
fn concurrent_writers_never_lose_the_newest_events() {
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 5_000;
    let ring = Arc::new(SpanRing::new(256));
    let name = intern("span-ring-stress");
    std::thread::scope(|s| {
        for w in 0..WRITERS as u64 {
            let ring = Arc::clone(&ring);
            s.spawn(move || {
                for i in 0..PER_WRITER {
                    // start_ns encodes (writer, iteration) so reads are checkable
                    ring.record(name, w as u32, w * PER_WRITER + i, 1);
                }
            });
        }
    });
    assert_eq!(ring.recorded(), WRITERS as u64 * PER_WRITER);
    let events = ring.read_all();
    // quiescent ring: every slot holds one of the last `capacity` claimed sequences, and
    // none of them is torn
    assert_eq!(events.len(), ring.capacity());
    for e in events {
        assert_eq!(e.name, "span-ring-stress");
        let w = e.start_ns / PER_WRITER;
        assert!(w < WRITERS as u64, "corrupt event: {e:?}");
        assert_eq!(e.tid as u64, w, "fields from different writes: {e:?}");
    }
}

#[test]
fn reader_during_writes_sees_only_intact_events() {
    let ring = Arc::new(SpanRing::new(64));
    let stop = Arc::new(AtomicBool::new(false));
    let name = intern("span-ring-live-read");
    std::thread::scope(|s| {
        for w in 0..2u32 {
            let ring = Arc::clone(&ring);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // invariant under test: dur == start + 1000, per event
                    ring.record(name, w, i, i + 1_000);
                    i += 1;
                }
            });
        }
        let deadline = Instant::now() + Duration::from_millis(200);
        let mut seen = 0usize;
        while Instant::now() < deadline {
            for e in ring.read_all() {
                assert_eq!(e.name, "span-ring-live-read");
                assert_eq!(
                    e.dur_ns,
                    e.start_ns + 1_000,
                    "torn event escaped seq validation: {e:?}"
                );
                seen += 1;
            }
        }
        stop.store(true, Ordering::Relaxed);
        assert!(seen > 0, "reader never observed a stable event");
    });
}

#[test]
fn writers_are_waitfree_while_a_reader_spins() {
    // A writer must finish a fixed batch quickly even with a reader hammering the ring;
    // generous bound so CI noise can't trip it — the point is "no blocking", not speed.
    let ring = Arc::new(SpanRing::new(128));
    let stop = Arc::new(AtomicBool::new(false));
    let name = intern("span-ring-waitfree");
    std::thread::scope(|s| {
        {
            let ring = Arc::clone(&ring);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let _ = ring.read_all();
                }
            });
        }
        let start = Instant::now();
        for i in 0..200_000u64 {
            ring.record(name, 0, i, 1);
        }
        let elapsed = start.elapsed();
        stop.store(true, Ordering::Relaxed);
        assert!(
            elapsed < Duration::from_secs(10),
            "writer took {elapsed:?} for 200k records — something is blocking"
        );
    });
}

#[test]
fn drop_oldest_is_exact_for_a_single_writer() {
    let ring = SpanRing::new(16);
    let name = intern("span-ring-drop-oldest");
    for i in 0..1_000u64 {
        ring.record(name, 0, i, 0);
    }
    let starts: Vec<u64> = ring.read_all().iter().map(|e| e.start_ns).collect();
    assert_eq!(starts, (984..1_000).collect::<Vec<_>>());
}
