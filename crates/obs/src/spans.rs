//! Tracing spans: per-thread fixed-capacity ring buffers with a lock-free hot path.
//!
//! The write path does **no locking and never blocks**: recording a span is one
//! `fetch_add` to claim a sequence number plus a handful of relaxed atomic stores into the
//! claimed slot, sealed by a release store of the sequence (a per-slot seqlock). When the
//! ring wraps, the oldest events are overwritten — drop-oldest, by construction. Readers
//! ([`SpanRing::read_all`], used by the exporters and the `trace` socket op) validate each
//! slot's sequence before and after copying its fields and simply skip slots a writer is
//! mid-flight on, so a live dump never stalls the instrumented thread.
//!
//! Span names are interned `&'static str`s; the [`span!`](crate::span!) macro caches the
//! intern id in a per-call-site `OnceLock`, so the intern table's mutex is taken once per
//! call site for the lifetime of the process, never per span.
//!
//! Every thread lazily creates its own ring on its first recorded span and registers it in
//! a global list, so [`collect_spans`] sees the commit thread, the speculation runner and
//! every pool worker side by side — which is exactly what the Chrome-trace timeline needs
//! to show speculation/commit overlap.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default per-thread ring capacity (events). ~40 bytes per slot.
pub const DEFAULT_RING_CAPACITY: usize = 16 * 1024;

/// One recorded span, resolved for export.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Interned span name.
    pub name: &'static str,
    /// Small dense id of the recording thread (assigned on first span, stable for the
    /// thread's lifetime).
    pub tid: u32,
    /// Start time in nanoseconds since the process's span epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

struct Slot {
    /// 0 = never written or mid-write; otherwise the (nonzero) sequence that wrote it.
    seq: AtomicU64,
    name: AtomicU32,
    tid: AtomicU32,
    start_ns: AtomicU64,
    dur_ns: AtomicU64,
}

impl Slot {
    fn empty() -> Self {
        Self {
            seq: AtomicU64::new(0),
            name: AtomicU32::new(0),
            tid: AtomicU32::new(0),
            start_ns: AtomicU64::new(0),
            dur_ns: AtomicU64::new(0),
        }
    }
}

/// A fixed-capacity, drop-oldest ring of span events. Writers never block (see the module
/// docs); multiple writers are memory-safe (each claims a distinct sequence), though in
/// normal operation each ring has exactly one writing thread.
pub struct SpanRing {
    slots: Box<[Slot]>,
    head: AtomicU64,
    /// Highest sequence already handed out by [`SpanRing::drain`]; events at or below it
    /// are never returned by a later drain.
    drained: AtomicU64,
}

impl SpanRing {
    /// A ring holding the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
            head: AtomicU64::new(0),
            drained: AtomicU64::new(0),
        }
    }

    /// Capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (recorded − capacity of them may have been dropped).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Record one event. Lock-free: claim a sequence, invalidate the slot, store the
    /// fields, seal with the sequence.
    #[inline]
    pub fn record(&self, name_id: u32, tid: u32, start_ns: u64, dur_ns: u64) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed) + 1; // nonzero
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        slot.seq.store(0, Ordering::Release);
        slot.name.store(name_id, Ordering::Relaxed);
        slot.tid.store(tid, Ordering::Relaxed);
        slot.start_ns.store(start_ns, Ordering::Relaxed);
        slot.dur_ns.store(dur_ns, Ordering::Relaxed);
        slot.seq.store(seq, Ordering::Release);
    }

    /// Snapshot every stable event in the ring, oldest first. Slots a writer is mid-flight
    /// on (or that were overwritten while being read) are skipped, never waited for.
    pub fn read_all(&self) -> Vec<SpanEvent> {
        self.read_after(0).into_iter().map(|(_, e)| e).collect()
    }

    /// Like [`SpanRing::read_all`], but only events with sequence strictly greater than
    /// `after`; the raw sealed sequences ride along.
    fn read_after(&self, after: u64) -> Vec<(u64, SpanEvent)> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let seq = slot.seq.load(Ordering::Acquire);
            if seq <= after {
                continue; // 0 = empty/mid-write; otherwise already drained
            }
            let name = slot.name.load(Ordering::Relaxed);
            let tid = slot.tid.load(Ordering::Relaxed);
            let start_ns = slot.start_ns.load(Ordering::Relaxed);
            let dur_ns = slot.dur_ns.load(Ordering::Relaxed);
            if slot.seq.load(Ordering::Acquire) != seq {
                continue; // torn: a writer lapped us mid-copy
            }
            out.push((seq, name, tid, start_ns, dur_ns));
        }
        out.sort_unstable_by_key(|&(seq, ..)| seq);
        out.into_iter()
            .map(|(seq, name, tid, start_ns, dur_ns)| {
                (
                    seq,
                    SpanEvent {
                        name: resolve(name),
                        tid,
                        start_ns,
                        dur_ns,
                    },
                )
            })
            .collect()
    }

    /// Consume the events recorded since the previous drain, oldest first. Advances a
    /// per-ring watermark instead of clearing slots, so a drain never races a concurrent
    /// [`SpanRing::read_all`] into losing events, and an event the writer is still
    /// mid-flight on is *not* skipped forever — the watermark only moves past sequences
    /// actually returned, so the in-flight tail lands in the next drain once sealed.
    ///
    /// A caller that drains more often than the ring wraps (every `capacity` events) sees
    /// **every** event of an arbitrarily long run; without draining, drop-oldest caps
    /// retained history at `capacity`. Events that wrapped out between drains are gone
    /// (drop-oldest is the contract). Concurrent drains of the *same* ring may hand the
    /// same event to both callers — drive draining from one collector thread.
    pub fn drain(&self) -> Vec<SpanEvent> {
        let after = self.drained.load(Ordering::Acquire);
        let events = self.read_after(after);
        if let Some(&(max_seq, _)) = events.last() {
            self.drained.fetch_max(max_seq, Ordering::AcqRel);
        }
        events.into_iter().map(|(_, e)| e).collect()
    }

    /// Invalidate every slot (the head keeps counting, so sequences stay unique).
    pub fn clear(&self) {
        for slot in self.slots.iter() {
            slot.seq.store(0, Ordering::Release);
        }
    }
}

// --- name interning -------------------------------------------------------------------

fn intern_table() -> &'static Mutex<Vec<&'static str>> {
    static TABLE: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(Vec::new()))
}

/// Intern a span name, returning its dense id. Meant to be called once per call site (the
/// [`span!`](crate::span!) macro caches the id in a `OnceLock`); the table is tiny and
/// scanned linearly.
pub fn intern(name: &'static str) -> u32 {
    let mut table = intern_table().lock().expect("span intern table poisoned");
    if let Some(i) = table.iter().position(|&n| n == name) {
        return i as u32;
    }
    table.push(name);
    (table.len() - 1) as u32
}

/// Resolve an intern id back to its name (`"?"` for ids from a torn read).
pub fn resolve(id: u32) -> &'static str {
    intern_table()
        .lock()
        .expect("span intern table poisoned")
        .get(id as usize)
        .copied()
        .unwrap_or("?")
}

// --- per-thread rings ------------------------------------------------------------------

/// One registered thread's ring plus its identity for export.
#[derive(Clone)]
pub struct ThreadRing {
    /// Dense thread id (matches [`SpanEvent::tid`]).
    pub tid: u32,
    /// Thread name at registration time (or `thread-<tid>`).
    pub name: String,
    /// The ring itself.
    pub ring: Arc<SpanRing>,
}

fn ring_registry() -> &'static Mutex<Vec<ThreadRing>> {
    static RINGS: OnceLock<Mutex<Vec<ThreadRing>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

static NEXT_TID: AtomicU32 = AtomicU32::new(0);
static RING_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);

/// Set the capacity used for rings of threads that have not recorded a span yet (existing
/// rings keep their size).
pub fn set_ring_capacity(capacity: usize) {
    RING_CAPACITY.store(capacity.max(1), Ordering::Relaxed);
}

thread_local! {
    static THREAD_RING: std::cell::OnceCell<(u32, Arc<SpanRing>)> =
        const { std::cell::OnceCell::new() };
}

#[inline]
fn with_thread_ring<R>(f: impl FnOnce(u32, &SpanRing) -> R) -> R {
    THREAD_RING.with(|cell| {
        let (tid, ring) = cell.get_or_init(|| {
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let ring = Arc::new(SpanRing::new(RING_CAPACITY.load(Ordering::Relaxed)));
            let name = std::thread::current()
                .name()
                .map(str::to_owned)
                .unwrap_or_else(|| format!("thread-{tid}"));
            ring_registry()
                .lock()
                .expect("span ring registry poisoned")
                .push(ThreadRing {
                    tid,
                    name,
                    ring: Arc::clone(&ring),
                });
            (tid, ring)
        });
        f(*tid, ring)
    })
}

/// Every thread ring registered so far (rings of exited threads are kept — their spans
/// stay visible in the exported timeline).
pub fn thread_rings() -> Vec<ThreadRing> {
    ring_registry()
        .lock()
        .expect("span ring registry poisoned")
        .clone()
}

/// Snapshot every ring's stable events, sorted by start time.
pub fn collect_spans() -> Vec<SpanEvent> {
    let mut events: Vec<SpanEvent> = thread_rings()
        .iter()
        .flat_map(|t| t.ring.read_all())
        .collect();
    events.sort_by_key(|e| (e.start_ns, e.tid));
    events
}

/// Clear every registered ring (for tests and long-lived services resetting a dump).
pub fn clear_spans() {
    for t in thread_rings() {
        t.ring.clear();
    }
}

/// Drain every registered ring's new-since-last-drain events, sorted by start time. A
/// long-lived collector (the ECO soak harness, a periodic trace shipper) calls this more
/// often than any ring wraps and accumulates complete history, instead of calling
/// [`collect_spans`] at the end and keeping only the last 16k events per thread. Call from
/// a single collector thread (see [`SpanRing::drain`]).
pub fn drain_spans() -> Vec<SpanEvent> {
    let mut events: Vec<SpanEvent> = thread_rings().iter().flat_map(|t| t.ring.drain()).collect();
    events.sort_by_key(|e| (e.start_ns, e.tid));
    events
}

// --- clock -----------------------------------------------------------------------------

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process's span epoch (first use of the clock).
#[inline]
pub fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

// --- the guard -------------------------------------------------------------------------

/// RAII span: records `[start, drop)` into the current thread's ring. Construct through
/// the [`span!`](crate::span!) macro (hot paths) or [`span`] (coarse phases); a disarmed
/// guard (instrumentation disabled) does nothing on drop.
#[must_use = "a span guard records its duration when dropped"]
pub struct SpanGuard {
    name_id: u32,
    start_ns: u64,
    armed: bool,
}

impl SpanGuard {
    /// An armed guard starting now. Callers should check [`crate::enabled`] first.
    #[inline]
    pub fn armed(name_id: u32) -> Self {
        Self {
            name_id,
            start_ns: now_ns(),
            armed: true,
        }
    }

    /// A guard that records nothing.
    #[inline]
    pub fn inert() -> Self {
        Self {
            name_id: 0,
            start_ns: 0,
            armed: false,
        }
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if self.armed {
            let end = now_ns();
            with_thread_ring(|tid, ring| {
                ring.record(
                    self.name_id,
                    tid,
                    self.start_ns,
                    end.saturating_sub(self.start_ns),
                );
            });
        }
    }
}

/// Start a span by name, interning on every call (fine for per-run phases; use the
/// [`span!`](crate::span!) macro on per-target hot paths, which caches the intern).
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if crate::enabled() {
        SpanGuard::armed(intern(name))
    } else {
        SpanGuard::inert()
    }
}

/// Record an already-measured complete span (for callers that time manually).
#[inline]
pub fn record_span(name: &'static str, start_ns: u64, dur_ns: u64) {
    if crate::enabled() {
        let id = intern(name);
        with_thread_ring(|tid, ring| ring.record(id, tid, start_ns, dur_ns));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_and_keeps_newest() {
        let ring = SpanRing::new(8);
        for i in 0..20u64 {
            ring.record(0, 0, i, 1);
        }
        let events = ring.read_all();
        assert_eq!(events.len(), 8);
        let starts: Vec<u64> = events.iter().map(|e| e.start_ns).collect();
        assert_eq!(starts, (12..20).collect::<Vec<_>>());
        assert_eq!(ring.recorded(), 20);
    }

    #[test]
    fn clear_empties_the_ring() {
        let ring = SpanRing::new(4);
        ring.record(0, 0, 1, 1);
        ring.clear();
        assert!(ring.read_all().is_empty());
        ring.record(0, 0, 2, 1);
        assert_eq!(ring.read_all().len(), 1);
    }

    #[test]
    fn drain_returns_each_event_exactly_once() {
        let ring = SpanRing::new(8);
        for i in 0..5u64 {
            ring.record(0, 0, i, 1);
        }
        let first: Vec<u64> = ring.drain().iter().map(|e| e.start_ns).collect();
        assert_eq!(first, (0..5).collect::<Vec<_>>());
        assert!(
            ring.drain().is_empty(),
            "second drain must return nothing new"
        );
        for i in 5..9u64 {
            ring.record(0, 0, i, 1);
        }
        let second: Vec<u64> = ring.drain().iter().map(|e| e.start_ns).collect();
        assert_eq!(second, (5..9).collect::<Vec<_>>());
        // read_all still sees the full retained window: draining moves a watermark, it
        // does not clear slots out from under a snapshot reader
        assert_eq!(ring.read_all().len(), 8);
    }

    #[test]
    fn frequent_drains_see_past_the_ring_capacity() {
        let ring = SpanRing::new(4);
        let mut seen = Vec::new();
        for i in 0..40u64 {
            ring.record(0, 0, i, 1);
            if i % 3 == 0 {
                seen.extend(ring.drain().iter().map(|e| e.start_ns));
            }
        }
        seen.extend(ring.drain().iter().map(|e| e.start_ns));
        // draining every 3 events on a capacity-4 ring loses nothing across 10× capacity
        assert_eq!(seen, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn intern_is_stable_and_resolvable() {
        let a = intern("obs-test-span-a");
        let b = intern("obs-test-span-b");
        assert_ne!(a, b);
        assert_eq!(intern("obs-test-span-a"), a);
        assert_eq!(resolve(a), "obs-test-span-a");
        assert_eq!(resolve(u32::MAX), "?");
    }
}
