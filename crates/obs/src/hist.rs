//! A log-bucketed histogram with bounded memory and a provable quantile error bound.
//!
//! Values are `u64` (the crate records durations as nanoseconds). Buckets follow the
//! HdrHistogram layout: values below [`SUB`] get exact unit buckets; above that, each
//! power-of-two range is subdivided into [`SUB`] linear sub-buckets, so every bucket's
//! width is at most `1/SUB` of its lower bound. [`Histogram::value_at_quantile`] returns
//! the *upper* bound of the bucket holding the rank-`⌈q·n⌉` sample (clamped to the
//! recorded maximum), which yields the guarantee the property tests assert:
//!
//! ```text
//! true_quantile ≤ estimate ≤ true_quantile · (1 + 1/SUB)
//! ```
//!
//! [`Histogram::merge`] adds bucket counts element-wise with saturating arithmetic, which
//! makes it exactly associative and commutative — per-thread or per-shard histograms can
//! be combined in any grouping, the same contract `WorkTrace::merge` and
//! `FopOpStats::merge` already follow in `flex-mgl`.

/// log2 of the number of linear sub-buckets per power-of-two range.
pub const SUB_BITS: u32 = 4;
/// Linear sub-buckets per power-of-two range; the relative bucket width (and therefore the
/// quantile error) is bounded by `1/SUB`.
pub const SUB: usize = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range: `SUB` exact unit buckets plus `SUB`
/// sub-buckets for each of the 60 power-of-two ranges above them (msb 4..=63 → shift
/// 0..=59 → groups 1..=60).
pub const NUM_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

/// Bucket index of a value (total over `u64`, monotone in the value).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BITS;
        let sub = ((v >> shift) as usize) & (SUB - 1);
        (shift as usize + 1) * SUB + sub
    }
}

/// Inclusive `(lo, hi)` value range of a bucket (inverse of [`bucket_index`]).
#[inline]
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUB {
        (index as u64, index as u64)
    } else {
        let shift = (index / SUB - 1) as u32;
        let sub = (index % SUB) as u64;
        let lo = (SUB as u64 + sub) << shift;
        // parenthesized: `lo + 2^shift` alone wraps for the topmost bucket
        (lo, lo + ((1u64 << shift) - 1))
    }
}

/// A mergeable log-bucketed histogram. See the module docs for the layout and bounds.
#[derive(Clone, PartialEq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    /// `u64::MAX` while empty, so `merge` is a plain `min`.
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram (~7.6 KiB of buckets, allocated once).
    pub fn new() -> Self {
        Self {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] = self.counts[bucket_index(v)].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Record a value `n` times.
    pub fn record_n(&mut self, v: u64, n: u64) {
        let i = bucket_index(v);
        self.counts[i] = self.counts[i].saturating_add(n);
        self.count = self.count.saturating_add(n);
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        if n > 0 {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
    }

    /// Record a duration as nanoseconds (saturating past ~584 years).
    #[inline]
    pub fn record_duration(&mut self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Fold another histogram into this one. Exactly associative and commutative
    /// (saturating element-wise adds, `min`/`max` folds), so any merge tree over the same
    /// multiset of records produces the same histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (exact, not bucket-approximated).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 while empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 while empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The value at quantile `q ∈ [0, 1]`: the upper bound of the bucket holding the
    /// rank-`⌈q·n⌉` smallest sample, clamped to the recorded maximum. Satisfies
    /// `true ≤ estimate ≤ true·(1 + 1/SUB)`; 0 while empty.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum = cum.saturating_add(c);
            if cum >= rank {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Iterator over the non-empty buckets as `(inclusive upper bound, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_bounds(i).1, c))
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min())
            .field("max", &self.max)
            .field("p50", &self.value_at_quantile(0.50))
            .field("p99", &self.value_at_quantile(0.99))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounds_invert_it() {
        let mut prev = 0usize;
        let probes: Vec<u64> = (0..200)
            .map(|i| i as u64)
            .chain((1..60).flat_map(|s| {
                let base = 1u64 << s;
                [base - 1, base, base + base / 3, base + base / 2]
            }))
            .chain([u64::MAX / 2, u64::MAX - 1, u64::MAX])
            .collect();
        let mut sorted = probes.clone();
        sorted.sort_unstable();
        for v in sorted {
            let i = bucket_index(v);
            assert!(i >= prev, "index must be monotone at {v}");
            prev = i;
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "{v} outside bucket [{lo},{hi}]");
            assert!(i < NUM_BUCKETS);
        }
    }

    #[test]
    fn bucket_width_is_bounded_relative_to_lo() {
        for i in SUB..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            let width = hi - lo + 1;
            assert!(
                width <= lo / SUB as u64,
                "bucket {i}: width {width} lo {lo}"
            );
        }
    }

    #[test]
    fn exact_below_sub() {
        let mut h = Histogram::new();
        for v in 0..SUB as u64 {
            h.record(v);
        }
        assert_eq!(h.value_at_quantile(0.0), 0);
        assert_eq!(h.value_at_quantile(1.0), SUB as u64 - 1);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB as u64 - 1);
        assert_eq!(h.sum(), (0..SUB as u64).sum::<u64>());
    }

    #[test]
    fn quantiles_track_a_known_distribution() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, expect) in [(0.5, 5_000u64), (0.99, 9_900), (0.999, 9_990)] {
            let est = h.value_at_quantile(q);
            assert!(est >= expect, "q{q}: {est} < {expect}");
            assert!(
                est as f64 <= expect as f64 * (1.0 + 1.0 / SUB as f64) + 1.0,
                "q{q}: {est} too far above {expect}"
            );
        }
        assert_eq!(h.value_at_quantile(1.0), 10_000);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.value_at_quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_equals_recording_everything_into_one() {
        let values_a = [0u64, 3, 17, 17, 900, 1 << 40];
        let values_b = [5u64, 17, 1_000_000, u64::MAX];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in values_a {
            a.record(v);
            all.record(v);
        }
        for v in values_b {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }
}
