//! Metrics registry: named counters, gauges, and histograms with point-in-time snapshots.
//!
//! A [`Registry`] hands out cheap clonable handles ([`Counter`], [`Gauge`],
//! [`HistogramHandle`]) that engines hold for the duration of a run. Counters and gauges
//! are single relaxed atomics; histograms take a per-instrument mutex (recording into one
//! is a handful of integer ops under the lock, and the engines record per-target or
//! per-delta, not per-instruction). [`Registry::snapshot`] produces an owned
//! [`Snapshot`] that the exporters in [`crate::export`] serialize to JSON or Prometheus
//! text.
//!
//! Names may embed Prometheus-style labels directly: `eco_apply_latency_ns{kind="move"}`.
//! The exporters split the base name from the label block, so per-kind series group under
//! one `# TYPE` family in the text exposition.
//!
//! Registration is idempotent: asking twice for the same name returns handles sharing the
//! same underlying cell, so independent code paths can meter the same series.

use crate::hist::Histogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// A monotonically increasing counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A handle to a registered histogram (see [`crate::hist::Histogram`] for semantics).
#[derive(Clone)]
pub struct HistogramHandle(Arc<Mutex<Histogram>>);

impl HistogramHandle {
    /// Record one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.lock().expect("histogram poisoned").record(v);
    }

    /// Record a duration as nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.0
            .lock()
            .expect("histogram poisoned")
            .record_duration(d);
    }

    /// Fold a locally accumulated histogram in (one lock for the whole batch).
    pub fn merge_from(&self, h: &Histogram) {
        self.0.lock().expect("histogram poisoned").merge(h);
    }

    /// Owned copy of the current state.
    pub fn get(&self) -> Histogram {
        self.0.lock().expect("histogram poisoned").clone()
    }

    /// Start a [`Timer`] that records into this histogram when dropped.
    #[inline]
    pub fn start_timer(&self) -> Timer {
        Timer {
            hist: self.clone(),
            start: Instant::now(),
        }
    }
}

/// RAII phase timer: records its elapsed time (ns) into a histogram on drop.
#[must_use = "a timer records its duration when dropped"]
pub struct Timer {
    hist: HistogramHandle,
    start: Instant,
}

impl Timer {
    /// Stop early and return the elapsed duration (otherwise drop records it).
    pub fn stop(self) -> std::time::Duration {
        let elapsed = self.start.elapsed();
        let this = std::mem::ManuallyDrop::new(self);
        this.hist.record_duration(elapsed);
        elapsed
    }
}

impl Drop for Timer {
    #[inline]
    fn drop(&mut self) {
        self.hist.record_duration(self.start.elapsed());
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicI64>>,
    histograms: BTreeMap<String, Arc<Mutex<Histogram>>>,
}

/// A registry of named instruments. `Registry::global()` is the workspace-wide default;
/// tests construct their own to stay isolated.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry the engines and the ECO service publish into.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Get or create a counter.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        Counter(Arc::clone(
            inner.counters.entry(name.to_owned()).or_default(),
        ))
    }

    /// Get or create a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        Gauge(Arc::clone(inner.gauges.entry(name.to_owned()).or_default()))
    }

    /// Get or create a histogram.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        HistogramHandle(Arc::clone(
            inner.histograms.entry(name.to_owned()).or_default(),
        ))
    }

    /// Convenience: set a counter-style series to an externally accumulated total. The
    /// stats structs (`WorkTrace`, `ShardStats`, `EcoStats`) publish through this at the
    /// end of a run, keeping their own public shapes untouched.
    pub fn set_counter(&self, name: &str, value: u64) {
        let c = self.counter(name);
        c.0.store(value, Ordering::Relaxed);
    }

    /// Point-in-time copy of every instrument.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.lock().expect("histogram poisoned").clone()))
                .collect(),
        }
    }

    /// Drop every instrument (tests; long-lived services resetting between loads).
    pub fn reset(&self) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        *inner = Inner::default();
    }
}

/// An owned point-in-time copy of a [`Registry`]'s instruments, ready for export.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram copies by name.
    pub histograms: BTreeMap<String, Histogram>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_the_underlying_cell() {
        let reg = Registry::new();
        let a = reg.counter("hits");
        let b = reg.counter("hits");
        a.inc();
        b.add(2);
        assert_eq!(reg.snapshot().counters["hits"], 3);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let reg = Registry::new();
        let g = reg.gauge("depth");
        g.set(4);
        g.add(-6);
        assert_eq!(reg.snapshot().gauges["depth"], -2);
    }

    #[test]
    fn timer_records_into_histogram() {
        let reg = Registry::new();
        let h = reg.histogram("latency_ns");
        {
            let _t = h.start_timer();
        }
        let stopped = h.start_timer().stop();
        let snap = reg.snapshot();
        assert_eq!(snap.histograms["latency_ns"].count(), 2);
        assert!(snap.histograms["latency_ns"].max() >= stopped.as_nanos() as u64);
    }

    #[test]
    fn snapshot_is_a_copy_not_a_view() {
        let reg = Registry::new();
        let c = reg.counter("n");
        c.inc();
        let snap = reg.snapshot();
        c.inc();
        assert_eq!(snap.counters["n"], 1);
        assert_eq!(reg.snapshot().counters["n"], 2);
    }
}
