//! Exporters: Chrome trace-event JSON for spans, JSON and Prometheus text for metrics.
//!
//! All three emit plain `String`s built with `std::fmt` — no serializer dependency. The
//! Chrome format is the "JSON Array Format" subset that `chrome://tracing` and Perfetto
//! both load: `"X"` (complete) events with microsecond `ts`/`dur`, plus `"M"` metadata
//! events naming each thread, so the speculation runner, the commit thread, and the pool
//! workers appear as labelled rows on one timeline.

use crate::hist::Histogram;
use crate::metrics::Snapshot;
use crate::spans::{thread_rings, SpanEvent, ThreadRing};
use std::fmt::Write as _;

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_owned()
    }
}

// --- Chrome trace ----------------------------------------------------------------------

/// Render span events as Chrome trace-event JSON (load via `chrome://tracing` or
/// <https://ui.perfetto.dev>). `ts`/`dur` are microseconds with nanosecond precision kept
/// as fractions. Thread names come from the ring registry.
pub fn chrome_trace_json(events: &[SpanEvent]) -> String {
    chrome_trace_json_with_threads(events, &thread_rings())
}

/// [`chrome_trace_json`] with an explicit thread list (for tests).
pub fn chrome_trace_json_with_threads(events: &[SpanEvent], threads: &[ThreadRing]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push_str("[\n");
    let mut first = true;
    for t in threads {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            t.tid,
            json_escape(&t.name)
        );
    }
    for e in events {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}}}",
            json_escape(e.name),
            e.tid,
            fmt_f64(e.start_ns as f64 / 1_000.0),
            fmt_f64(e.dur_ns as f64 / 1_000.0)
        );
    }
    out.push_str("\n]\n");
    out
}

// --- metrics JSON ----------------------------------------------------------------------

fn histogram_json(h: &Histogram) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"buckets\":[",
        h.count(),
        h.sum(),
        h.min(),
        h.max(),
        fmt_f64(h.mean()),
        h.value_at_quantile(0.50),
        h.value_at_quantile(0.90),
        h.value_at_quantile(0.99),
        h.value_at_quantile(0.999)
    );
    let mut first = true;
    for (le, count) in h.nonzero_buckets() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "[{le},{count}]");
    }
    out.push_str("]}");
    out
}

/// Render a snapshot as a JSON object:
/// `{"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,max,mean,p50,p90,p99,p999,buckets:[[le,count],..]}}}`.
pub fn snapshot_json(snap: &Snapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    let mut first = true;
    for (name, v) in &snap.counters {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{}\":{}", json_escape(name), v);
    }
    out.push_str("},\"gauges\":{");
    first = true;
    for (name, v) in &snap.gauges {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{}\":{}", json_escape(name), v);
    }
    out.push_str("},\"histograms\":{");
    first = true;
    for (name, h) in &snap.histograms {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{}\":{}", json_escape(name), histogram_json(h));
    }
    out.push_str("}}");
    out
}

// --- Prometheus text -------------------------------------------------------------------

/// Split `name{label="x"}` into `(base, Some(label block))`, or `(name, None)`.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match name.find('{') {
        Some(i) if name.ends_with('}') => (&name[..i], Some(&name[i + 1..name.len() - 1])),
        _ => (name, None),
    }
}

/// Sanitize a metric name for the Prometheus exposition format.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn prom_series(base: &str, labels: Option<&str>, extra: Option<&str>) -> String {
    let base = prom_name(base);
    match (labels, extra) {
        (None, None) => base,
        (Some(l), None) => format!("{base}{{{l}}}"),
        (None, Some(e)) => format!("{base}{{{e}}}"),
        (Some(l), Some(e)) => format!("{base}{{{l},{e}}}"),
    }
}

/// Render a snapshot in the Prometheus text exposition format (version 0.0.4): counters
/// and gauges as single samples, histograms as cumulative `_bucket{le=...}` series plus
/// `_sum` and `_count`. Registry names may carry a `{label="x"}` suffix; series sharing a
/// base name are folded under one `# TYPE` family.
pub fn snapshot_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_family = String::new();
    for (name, v) in &snap.counters {
        let (base, labels) = split_labels(name);
        let family = prom_name(base);
        if family != last_family {
            let _ = writeln!(out, "# TYPE {family} counter");
            last_family = family.clone();
        }
        let _ = writeln!(out, "{} {}", prom_series(base, labels, None), v);
    }
    for (name, v) in &snap.gauges {
        let (base, labels) = split_labels(name);
        let family = prom_name(base);
        if family != last_family {
            let _ = writeln!(out, "# TYPE {family} gauge");
            last_family = family.clone();
        }
        let _ = writeln!(out, "{} {}", prom_series(base, labels, None), v);
    }
    for (name, h) in &snap.histograms {
        let (base, labels) = split_labels(name);
        let family = prom_name(base);
        if family != last_family {
            let _ = writeln!(out, "# TYPE {family} histogram");
            last_family = family.clone();
        }
        let mut cum = 0u64;
        for (le, count) in h.nonzero_buckets() {
            cum = cum.saturating_add(count);
            let le = format!("le=\"{le}\"");
            let _ = writeln!(
                out,
                "{} {}",
                prom_series(&format!("{base}_bucket"), labels, Some(&le)),
                cum
            );
        }
        let _ = writeln!(
            out,
            "{} {}",
            prom_series(&format!("{base}_bucket"), labels, Some("le=\"+Inf\"")),
            h.count()
        );
        let _ = writeln!(
            out,
            "{} {}",
            prom_series(&format!("{base}_sum"), labels, None),
            h.sum()
        );
        let _ = writeln!(
            out,
            "{} {}",
            prom_series(&format!("{base}_count"), labels, None),
            h.count()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::spans::SpanRing;
    use std::sync::Arc;

    fn sample_snapshot() -> Snapshot {
        let reg = Registry::new();
        reg.counter("eco_applied_total{kind=\"move\"}").add(7);
        reg.counter("eco_applied_total{kind=\"resize\"}").add(2);
        reg.gauge("pipeline_depth").set(3);
        let h = reg.histogram("apply_latency_ns");
        for v in [100u64, 200, 400, 120_000] {
            h.record(v);
        }
        reg.snapshot()
    }

    #[test]
    fn chrome_trace_is_wellformed_and_carries_thread_names() {
        let ring = Arc::new(SpanRing::new(8));
        ring.record(crate::spans::intern("fop"), 7, 1_500, 2_500);
        let threads = vec![ThreadRing {
            tid: 7,
            name: "commit".into(),
            ring: Arc::clone(&ring),
        }];
        let events = ring.read_all();
        let json = chrome_trace_json_with_threads(&events, &threads);
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"name\":\"commit\""));
        assert!(json.contains("\"name\":\"fop\""));
        assert!(json.contains("\"ts\":1.5"));
        assert!(json.contains("\"dur\":2.5"));
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn snapshot_json_carries_all_instruments() {
        let json = snapshot_json(&sample_snapshot());
        assert!(json.contains("\"eco_applied_total{kind=\\\"move\\\"}\":7"));
        assert!(json.contains("\"pipeline_depth\":3"));
        assert!(json.contains("\"count\":4"));
        assert!(json.contains("\"p999\":"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn prometheus_text_folds_label_series_under_one_family() {
        let text = snapshot_prometheus(&sample_snapshot());
        assert_eq!(text.matches("# TYPE eco_applied_total counter").count(), 1);
        assert!(text.contains("eco_applied_total{kind=\"move\"} 7"));
        assert!(text.contains("eco_applied_total{kind=\"resize\"} 2"));
        assert!(text.contains("# TYPE pipeline_depth gauge"));
        assert!(text.contains("# TYPE apply_latency_ns histogram"));
        assert!(text.contains("apply_latency_ns_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("apply_latency_ns_sum 120700"));
        assert!(text.contains("apply_latency_ns_count 4"));
        // buckets are cumulative: the last finite bucket equals the count
        let last_finite = text
            .lines()
            .rfind(|l| l.starts_with("apply_latency_ns_bucket{le=\"") && !l.contains("+Inf"))
            .unwrap();
        assert!(last_finite.ends_with(" 4"), "{last_finite}");
    }
}
