//! `flex-obs`: the workspace's unified observability layer. Std-only, zero dependencies.
//!
//! Three pieces:
//!
//! * **Spans** ([`spans`], the [`span!`] macro): RAII phase timers writing to per-thread
//!   fixed-capacity drop-oldest ring buffers with no locks on the hot path, exportable as
//!   Chrome trace-event JSON ([`export::chrome_trace_json`]). Span recording is gated by a
//!   process-wide flag — **off by default** — so the serial bit-exactness oracle and the
//!   golden Table 1 replication run exactly the code they always ran plus one relaxed
//!   atomic load per call site.
//! * **Metrics** ([`metrics`]): named counters, gauges, and mergeable log-bucketed
//!   histograms ([`hist::Histogram`]) with point-in-time [`metrics::Snapshot`]s
//!   serializable to JSON ([`export::snapshot_json`]) and Prometheus text
//!   ([`export::snapshot_prometheus`]).
//! * **Exporters** ([`export`]): plain-`String` renderers for all of the above.
//!
//! Typical engine instrumentation:
//!
//! ```
//! flex_obs::set_enabled(true);
//! {
//!     let _span = flex_obs::span!("legalize.fop");
//!     // ... work ...
//! }
//! let h = flex_obs::global().histogram("apply_latency_ns");
//! h.record(1_250);
//! let trace = flex_obs::export::chrome_trace_json(&flex_obs::collect_spans());
//! assert!(trace.contains("legalize.fop"));
//! flex_obs::set_enabled(false);
//! ```

pub mod export;
pub mod hist;
pub mod metrics;
pub mod spans;

pub use hist::Histogram;
pub use metrics::{Counter, Gauge, HistogramHandle, Registry, Snapshot, Timer};
pub use spans::{
    clear_spans, collect_spans, drain_spans, now_ns, record_span, set_ring_capacity, span,
    thread_rings, SpanEvent, SpanGuard, SpanRing, ThreadRing,
};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether span recording is on. One relaxed load; this is the entire disabled-path cost
/// of a [`span!`] call site.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn span recording on or off (metrics handles are always live — they are plain
/// atomics the holder explicitly calls).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Enable span recording if the `FLEX_OBS` environment variable is set to something other
/// than `0`/`off`/`false`; returns the resulting state. Binaries call this at startup so
/// `FLEX_OBS=1` lights up any run without a flag change.
pub fn init_from_env() -> bool {
    if let Ok(v) = std::env::var("FLEX_OBS") {
        let on = !matches!(v.as_str(), "" | "0" | "off" | "false");
        set_enabled(on);
    }
    enabled()
}

/// The process-wide metrics registry (shorthand for [`Registry::global`]).
pub fn global() -> &'static Registry {
    Registry::global()
}

/// Start an RAII span with a `&'static str` name, caching the interned name id in a
/// per-call-site `OnceLock` so steady-state cost is two relaxed atomic loads plus two
/// clock reads — and a single relaxed load when disabled. Bind the result:
/// `let _span = span!("mgl.fop");` (an unbound guard drops immediately).
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        if $crate::enabled() {
            static NAME_ID: ::std::sync::OnceLock<u32> = ::std::sync::OnceLock::new();
            let id = *NAME_ID.get_or_init(|| $crate::spans::intern($name));
            $crate::SpanGuard::armed(id)
        } else {
            $crate::SpanGuard::inert()
        }
    }};
}

#[cfg(test)]
mod tests {
    use std::sync::Mutex;

    // Both tests flip the process-wide enabled flag; serialize them.
    static FLAG_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn span_macro_is_inert_when_disabled() {
        let _guard = FLAG_LOCK.lock().unwrap();
        super::set_enabled(false);
        {
            let _s = span!("obs-lib-test-disabled");
        }
        let events = super::collect_spans();
        assert!(!events.iter().any(|e| e.name == "obs-lib-test-disabled"));
    }

    #[test]
    fn span_macro_records_when_enabled() {
        let _guard = FLAG_LOCK.lock().unwrap();
        super::set_enabled(true);
        {
            let _s = span!("obs-lib-test-enabled");
        }
        super::set_enabled(false);
        let events = super::collect_spans();
        assert!(events.iter().any(|e| e.name == "obs-lib-test-enabled"));
    }
}
