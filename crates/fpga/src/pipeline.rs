//! Operator pipeline models: normal, fine-grained (stream I/O), and multi-granularity.
//!
//! Challenge-2 of the paper: the FOP operators have irregular per-item work, and a *normal*
//! FPGA pipeline — each operator finishing all of its items and parking the intermediate result
//! in RAM before the next operator starts — leaves most operators idle most of the time.
//! FLEX restructures the operators so that those traversing breakpoints in the same direction
//! stream items to each other (*fine-grained* pipelining), while the two bidirectional
//! traversals are chained *coarsely*; the combination is the multi-granularity pipeline of
//! Sec. 3.2. The closed-form cycle models below quantify exactly that difference and drive the
//! Fig. 8 ablation.

use crate::clock::Cycles;
use serde::{Deserialize, Serialize};

/// Timing characteristics of one pipeline operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OperatorSpec {
    /// Human-readable operator name (for reports).
    pub name: &'static str,
    /// Pipeline fill latency: cycles from the first input entering to the first output leaving.
    pub latency: u64,
    /// Initiation interval: cycles between successive items in steady state.
    pub initiation_interval: u64,
    /// Fixed start-up overhead per invocation (control, address generation).
    pub startup: u64,
}

impl OperatorSpec {
    /// Create an operator spec.
    pub const fn new(
        name: &'static str,
        latency: u64,
        initiation_interval: u64,
        startup: u64,
    ) -> Self {
        Self {
            name,
            latency,
            initiation_interval,
            startup,
        }
    }

    /// Cycles for this operator to process `items` in isolation.
    pub fn solo_cycles(&self, items: u64) -> Cycles {
        if items == 0 {
            return Cycles(self.startup);
        }
        Cycles(self.startup + self.latency + self.initiation_interval * items)
    }
}

/// Cycles per intermediate-result element written to and read back from BRAM between operators
/// of a normal pipeline (one write by the producer, one read by the consumer).
pub const MEM_ROUNDTRIP_PER_ITEM: u64 = 2;

/// Normal pipeline (left of Fig. 5): every operator runs to completion over all items, stores
/// its results in RAM, and only then does the next operator start (paying the read-back cost).
pub fn normal_pipeline_cycles(ops: &[OperatorSpec], items: u64) -> Cycles {
    let mut total = Cycles::ZERO;
    for (i, op) in ops.iter().enumerate() {
        total += op.solo_cycles(items);
        if i + 1 < ops.len() {
            total += Cycles(MEM_ROUNDTRIP_PER_ITEM * items);
        }
    }
    total
}

/// Fine-grained (stream I/O) pipeline: operators pass individual items onward as soon as they
/// are produced, so the chain behaves like one deep pipeline — total fill latency plus the
/// slowest operator's initiation interval per item, with no intermediate memory traffic.
pub fn fine_grained_cycles(ops: &[OperatorSpec], items: u64) -> Cycles {
    if ops.is_empty() {
        return Cycles::ZERO;
    }
    let startup: u64 = ops.iter().map(|o| o.startup).sum::<u64>() / ops.len() as u64;
    let fill: u64 = ops.iter().map(|o| o.latency).sum();
    let ii = ops.iter().map(|o| o.initiation_interval).max().unwrap_or(1);
    Cycles(startup + fill + ii * items)
}

/// Multi-granularity pipeline (right of Fig. 5): groups of operators that traverse in the same
/// direction are fine-grained internally; the groups themselves are chained coarsely (a group
/// starts only when its predecessor finished, because a backward traversal cannot consume a
/// forward traversal's output element-by-element).
pub fn multi_granularity_cycles(groups: &[&[OperatorSpec]], items: u64) -> Cycles {
    groups.iter().map(|g| fine_grained_cycles(g, items)).sum()
}

/// The five original FOP breakpoint operators with representative per-item costs
/// (cell shifting is modelled separately by the SACS architecture model in `flex-core`).
pub fn original_fop_operators() -> Vec<OperatorSpec> {
    vec![
        OperatorSpec::new("sort bp", 6, 1, 4),
        OperatorSpec::new("merge bp", 2, 1, 2),
        OperatorSpec::new("sum slopesR", 2, 1, 2),
        OperatorSpec::new("sum slopesL", 2, 1, 2),
        OperatorSpec::new("calculate value", 3, 1, 2),
    ]
}

/// The reorganized operator groups of FLEX: `sort bp` streams into `fwdtraverse`
/// (fwdmerge + sum slopesR + calculate vR), then `bwdtraverse` (bwdmerge + sum slopesL +
/// calculate vL and v) runs as the second coarse stage.
pub fn reorganized_fop_groups() -> (Vec<OperatorSpec>, Vec<OperatorSpec>) {
    (
        vec![
            OperatorSpec::new("sort bp", 6, 1, 4),
            OperatorSpec::new("fwdmerge", 2, 1, 0),
            OperatorSpec::new("sum slopesR", 2, 1, 0),
            OperatorSpec::new("calculate vR", 2, 1, 0),
        ],
        vec![
            OperatorSpec::new("bwdmerge", 2, 1, 0),
            OperatorSpec::new("sum slopesL", 2, 1, 0),
            OperatorSpec::new("calculate vL and v", 3, 1, 0),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_cycles_include_startup_and_latency() {
        let op = OperatorSpec::new("x", 5, 2, 3);
        assert_eq!(op.solo_cycles(0), Cycles(3));
        assert_eq!(op.solo_cycles(10), Cycles(3 + 5 + 20));
    }

    #[test]
    fn fine_grained_beats_normal_for_any_item_count() {
        let ops = original_fop_operators();
        for items in [1u64, 8, 64, 500] {
            let normal = normal_pipeline_cycles(&ops, items);
            let fine = fine_grained_cycles(&ops, items);
            assert!(
                fine < normal,
                "items={items}: fine {fine:?} !< normal {normal:?}"
            );
        }
    }

    #[test]
    fn multi_granularity_sits_between_normal_and_ideal_fine() {
        let (fwd, bwd) = reorganized_fop_groups();
        let all: Vec<OperatorSpec> = fwd.iter().chain(bwd.iter()).copied().collect();
        for items in [16u64, 128, 512] {
            let normal = normal_pipeline_cycles(&original_fop_operators(), items);
            let multi = multi_granularity_cycles(&[&fwd, &bwd], items);
            let ideal = fine_grained_cycles(&all, items);
            assert!(multi < normal, "items={items}");
            assert!(multi >= ideal, "items={items}");
        }
    }

    #[test]
    fn speedup_of_multi_granularity_is_in_the_papers_range() {
        // the paper attributes an additional 1×–2× to multi-granularity pipelining over the
        // normal pipeline for realistic breakpoint counts
        let (fwd, bwd) = reorganized_fop_groups();
        for items in [32u64, 100, 300] {
            let normal = normal_pipeline_cycles(&original_fop_operators(), items).count() as f64;
            let multi = multi_granularity_cycles(&[&fwd, &bwd], items).count() as f64;
            let speedup = normal / multi;
            assert!(
                (1.5..=10.0).contains(&speedup),
                "items={items}: speedup {speedup:.2} outside plausible range"
            );
        }
    }

    #[test]
    fn empty_inputs_are_handled() {
        assert_eq!(fine_grained_cycles(&[], 100), Cycles(0));
        assert_eq!(normal_pipeline_cycles(&[], 100), Cycles(0));
        let ops = original_fop_operators();
        assert!(normal_pipeline_cycles(&ops, 0).count() > 0); // startup still paid
    }
}
