//! # flex-fpga — cycle-approximate FPGA hardware model
//!
//! FLEX is evaluated on an AMD Alveo U50 running at 285 MHz. This crate substitutes that board
//! with a performance and resource model of the primitives the FLEX architecture is built from
//! (see DESIGN.md §1 for the substitution rationale):
//!
//! * [`clock`] — clock domains and cycle/time conversion (the SACS tables run in a domain at
//!   twice the PE frequency, Sec. 4.3.2).
//! * [`bram`] — on-chip RAM: dual-port banks, odd-even banking, ping-pong buffers.
//! * [`sorter`] — insertion/merge hardware sorters (the Ahead Sorter of Fig. 4).
//! * [`pipeline`] — operator pipelines: normal (operator-at-a-time), fine-grained (stream I/O),
//!   and the coarse+fine *multi-granularity* composition of Sec. 3.2.
//! * [`resources`] — LUT/FF/BRAM/DSP accounting against the U50 budget (Table 2).
//! * [`link`] — the CPU↔FPGA transfer model (PCIe-attached accelerator card).
//!
//! The functional algorithms (MGL, SACS) execute for real in `flex-mgl`; this crate only
//! predicts how many cycles the FLEX architecture would need for the *same work*, which is what
//! the paper's normalized-speedup figures (Fig. 8, 9, 10) report.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bram;
pub mod clock;
pub mod link;
pub mod pipeline;
pub mod resources;
pub mod sorter;

pub use bram::{BramBank, OddEvenBram, PingPongBuffer};
pub use clock::{ClockDomain, Cycles};
pub use link::LinkModel;
pub use pipeline::{
    fine_grained_cycles, multi_granularity_cycles, normal_pipeline_cycles, OperatorSpec,
};
pub use resources::{Resources, ALVEO_U50};
pub use sorter::SorterModel;
