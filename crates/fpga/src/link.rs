//! CPU ↔ FPGA link model.
//!
//! The Alveo U50 is a PCIe-attached card; every localRegion the CPU prepares must be shipped to
//! the FPGA before its FOP can run, and the chosen placement must come back. FLEX's task
//! assignment (Sec. 3.1.1) is designed to minimize this traffic — keeping step (e) on the CPU
//! avoids shipping every updated cell position back — and the ping-pong preload hides the
//! remaining transfers behind computation (Sec. 5.3). This model provides the transfer-time
//! arithmetic those analyses need.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// A simple bandwidth + latency model of the host link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Sustained bandwidth in gigabytes per second.
    pub bandwidth_gbps: f64,
    /// Per-transfer latency (driver + DMA setup) in microseconds.
    pub latency_us: f64,
}

impl Default for LinkModel {
    fn default() -> Self {
        // PCIe Gen3 x16 effective bandwidth with a conservative DMA setup cost
        Self {
            bandwidth_gbps: 12.0,
            latency_us: 5.0,
        }
    }
}

/// Bytes needed to describe one localCell on the wire (position, size, segment membership, id).
pub const BYTES_PER_CELL: u64 = 24;
/// Bytes needed to describe one localSegment.
pub const BYTES_PER_SEGMENT: u64 = 12;
/// Bytes returned per placed cell (id + new position).
pub const BYTES_PER_RESULT: u64 = 8;

impl LinkModel {
    /// Time to transfer `bytes` in one DMA.
    pub fn transfer(&self, bytes: u64) -> Duration {
        let seconds = self.latency_us * 1e-6 + bytes as f64 / (self.bandwidth_gbps * 1e9);
        Duration::from_secs_f64(seconds)
    }

    /// Time to ship one localRegion (cells + segments) to the card.
    pub fn region_download(&self, cells: u64, segments: u64) -> Duration {
        self.transfer(cells * BYTES_PER_CELL + segments * BYTES_PER_SEGMENT)
    }

    /// Time to return the FOP result for a region.
    ///
    /// With FLEX's task assignment only the target's chosen position and the shifted cells'
    /// positions need to return when step (e) stays on the CPU; offloading step (e) to the FPGA
    /// (the Fig. 10 ablation) instead requires *all* updated positions to come back.
    pub fn region_upload(&self, updated_cells: u64) -> Duration {
        self.transfer(updated_cells * BYTES_PER_RESULT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_dominates_small_transfers() {
        let link = LinkModel::default();
        let tiny = link.transfer(64);
        assert!(tiny.as_secs_f64() >= 5e-6);
        assert!(tiny.as_secs_f64() < 6e-6);
    }

    #[test]
    fn bandwidth_dominates_large_transfers() {
        let link = LinkModel::default();
        let big = link.transfer(1_200_000_000); // 1.2 GB at 12 GB/s ≈ 0.1 s
        assert!((big.as_secs_f64() - 0.1).abs() < 0.01);
    }

    #[test]
    fn byte_accounting_matches_the_wire_format() {
        // one localCell on the wire: position (2×4 B), size (2×4 B), segment row + id (8 B)
        assert_eq!(BYTES_PER_CELL, 24);
        // one localSegment: row (4 B) + span lo/hi (8 B)
        assert_eq!(BYTES_PER_SEGMENT, 12);
        // one result record: id (4 B) + position (4 B)
        assert_eq!(BYTES_PER_RESULT, 8);

        // download/upload helpers must be exactly the linear byte model, no hidden padding
        let link = LinkModel::default();
        for (cells, segments) in [(0u64, 0u64), (1, 1), (60, 9), (1000, 17)] {
            assert_eq!(
                link.region_download(cells, segments),
                link.transfer(cells * BYTES_PER_CELL + segments * BYTES_PER_SEGMENT)
            );
        }
        for updated in [0u64, 1, 2, 61] {
            assert_eq!(
                link.region_upload(updated),
                link.transfer(updated * BYTES_PER_RESULT)
            );
        }
    }

    #[test]
    fn transfer_time_is_monotone_in_bytes() {
        let link = LinkModel::default();
        let mut last = link.transfer(0);
        for bytes in [1u64, 24, 1024, 1 << 20, 1 << 30] {
            let t = link.transfer(bytes);
            assert!(t >= last, "transfer time must not decrease with size");
            last = t;
        }
    }

    #[test]
    fn region_traffic_scales_with_cells() {
        let link = LinkModel::default();
        let small = link.region_download(10, 5);
        let large = link.region_download(1000, 5);
        assert!(large > small);
        // returning the whole region (step (e) on FPGA) costs more than returning a handful of
        // shifted cells (step (e) on CPU)
        assert!(link.region_upload(200) > link.region_upload(8));
    }
}
