//! Hardware sorter models.
//!
//! SACS needs the localCells of a region sorted by x before shifting begins (the *Ahead Sorter*
//! of Fig. 4), and the FOP pipeline sorts breakpoints by x. FLEX combines an insertion sorter
//! (cheap, fully pipelined, but O(n) per inserted element when used alone) with a merge sorter
//! (streaming k-way merge) following the Vitis database-library designs cited by the paper
//! (\[1\], \[2\]). The model below captures their throughput so that Fig. 6(g) — pre-sorting is
//! about 10% of FOP runtime — and the sorter's small resource footprint (Sec. 5.4) can be
//! reproduced.

use crate::clock::Cycles;
use crate::resources::Resources;
use serde::{Deserialize, Serialize};

/// The kind of hardware sorter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SorterKind {
    /// Insertion sorter: a linear array of compare-swap stages. One element accepted per cycle;
    /// the full sorted sequence is available `capacity` cycles after the last insert. Only
    /// practical up to its capacity.
    Insertion,
    /// Merge sorter: streaming 2-way merge tree over pre-sorted chunks.
    Merge,
    /// The FLEX combination: insertion sorter for chunks up to its capacity, merge sorter to
    /// combine chunks (the configuration described in Sec. 4.3.1).
    Combined,
}

/// A hardware sorter model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SorterModel {
    /// The sorter micro-architecture.
    pub kind: SorterKind,
    /// Capacity of the insertion-sorter stage (elements held in the compare-swap array).
    pub insertion_capacity: u64,
}

impl Default for SorterModel {
    fn default() -> Self {
        Self {
            kind: SorterKind::Combined,
            insertion_capacity: 32,
        }
    }
}

impl SorterModel {
    /// Create a model of the given kind with a given insertion capacity.
    pub fn new(kind: SorterKind, insertion_capacity: u64) -> Self {
        Self {
            kind,
            insertion_capacity: insertion_capacity.max(2),
        }
    }

    /// Cycles to sort `n` elements.
    pub fn sort_cycles(&self, n: u64) -> Cycles {
        if n <= 1 {
            return Cycles(n);
        }
        match self.kind {
            SorterKind::Insertion => {
                // one element per cycle in, plus a drain of min(n, capacity); sequences longer
                // than the capacity fall back to repeated partial sorts (quadratic-ish penalty)
                if n <= self.insertion_capacity {
                    Cycles(n + n)
                } else {
                    let chunks = n.div_ceil(self.insertion_capacity);
                    Cycles(n + chunks * self.insertion_capacity + chunks * n / 2)
                }
            }
            SorterKind::Merge => {
                // a streaming 2-way merge tree: log2(n) passes at one element per cycle
                let passes = 64 - (n - 1).leading_zeros() as u64;
                Cycles(n * passes)
            }
            SorterKind::Combined => {
                // insertion-sort chunks of `capacity`, then merge the chunks streaming
                let chunk = self.insertion_capacity;
                let chunks = n.div_ceil(chunk);
                let insert = Cycles(n + chunk.min(n));
                if chunks <= 1 {
                    insert
                } else {
                    let merge_passes = 64 - (chunks - 1).leading_zeros() as u64;
                    insert + Cycles(n * merge_passes)
                }
            }
        }
    }

    /// Rough resource footprint of the sorter (compare-swap cells dominate). The paper notes the
    /// sorter is *not* duplicated when a second FOP PE is added and that its footprint is small.
    pub fn resources(&self) -> Resources {
        let cells = self.insertion_capacity;
        match self.kind {
            SorterKind::Insertion => Resources::new(cells * 60, cells * 80, 0, 0),
            SorterKind::Merge => Resources::new(2_000, 2_500, 4, 0),
            SorterKind::Combined => Resources::new(cells * 60 + 2_000, cells * 80 + 2_500, 4, 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::FLEX_ONE_PE;

    #[test]
    fn trivial_inputs() {
        let s = SorterModel::default();
        assert_eq!(s.sort_cycles(0), Cycles(0));
        assert_eq!(s.sort_cycles(1), Cycles(1));
    }

    #[test]
    fn combined_beats_insertion_for_large_inputs() {
        let comb = SorterModel::new(SorterKind::Combined, 32);
        let ins = SorterModel::new(SorterKind::Insertion, 32);
        let n = 512;
        assert!(comb.sort_cycles(n) < ins.sort_cycles(n));
        // and is no worse than a pure merge sorter for small inputs
        let merge = SorterModel::new(SorterKind::Merge, 32);
        assert!(comb.sort_cycles(16) <= merge.sort_cycles(16));
    }

    #[test]
    fn cycles_grow_monotonically() {
        for kind in [
            SorterKind::Insertion,
            SorterKind::Merge,
            SorterKind::Combined,
        ] {
            let s = SorterModel::new(kind, 16);
            let mut prev = Cycles(0);
            for n in [1u64, 2, 8, 16, 17, 64, 200, 1000] {
                let c = s.sort_cycles(n);
                assert!(c >= prev, "{kind:?} not monotone at n={n}");
                prev = c;
            }
        }
    }

    #[test]
    fn sorter_resources_are_small_relative_to_a_fop_pe() {
        let s = SorterModel::default();
        let r = s.resources();
        assert!(
            r.luts * 10 < FLEX_ONE_PE.luts,
            "sorter LUTs should be a small fraction of a PE"
        );
        assert!(r.brams < 16);
    }

    #[test]
    fn merge_sorter_is_n_log_n() {
        let s = SorterModel::new(SorterKind::Merge, 16);
        assert_eq!(s.sort_cycles(8), Cycles(8 * 3));
        assert_eq!(s.sort_cycles(9), Cycles(9 * 4));
    }
}
