//! FPGA resource accounting (LUTs, FFs, BRAMs, DSPs) against the Alveo U50 budget.
//!
//! Table 2 of the paper reports the consumption of the whole FLEX design for one and two FOP
//! PEs; this module reproduces that accounting and lets the scalability analysis of Sec. 5.4
//! ask "how many PEs fit before BRAM becomes the bound?".

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Mul};

/// A bundle of FPGA resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Resources {
    /// Look-up tables.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// Block RAMs (36 Kb).
    pub brams: u64,
    /// DSP slices.
    pub dsps: u64,
}

/// The available resources of the AMD Alveo U50 used in the paper (Table 2, "Available").
pub const ALVEO_U50: Resources = Resources {
    luts: 871_680,
    ffs: 1_743_360,
    brams: 1_344,
    dsps: 5_952,
};

/// FLEX resource consumption with a single FOP PE (Table 2, row 1).
pub const FLEX_ONE_PE: Resources = Resources {
    luts: 59_837,
    ffs: 67_326,
    brams: 391,
    dsps: 8,
};

/// FLEX resource consumption with two parallel FOP PEs (Table 2, row 2).
pub const FLEX_TWO_PE: Resources = Resources {
    luts: 86_632,
    ffs: 91_603,
    brams: 738,
    dsps: 12,
};

impl Resources {
    /// Create a resource bundle.
    pub fn new(luts: u64, ffs: u64, brams: u64, dsps: u64) -> Self {
        Self {
            luts,
            ffs,
            brams,
            dsps,
        }
    }

    /// Whether this bundle fits inside `budget`.
    pub fn fits_in(&self, budget: &Resources) -> bool {
        self.luts <= budget.luts
            && self.ffs <= budget.ffs
            && self.brams <= budget.brams
            && self.dsps <= budget.dsps
    }

    /// Utilization of each resource class relative to `budget` (fractions, may exceed 1.0).
    pub fn utilization(&self, budget: &Resources) -> ResourceUtilization {
        let frac = |a: u64, b: u64| {
            if b == 0 {
                f64::INFINITY
            } else {
                a as f64 / b as f64
            }
        };
        ResourceUtilization {
            luts: frac(self.luts, budget.luts),
            ffs: frac(self.ffs, budget.ffs),
            brams: frac(self.brams, budget.brams),
            dsps: frac(self.dsps, budget.dsps),
        }
    }

    /// The resource class that limits replication, and how many copies fit.
    pub fn replication_limit(&self, budget: &Resources) -> (ResourceKind, u64) {
        let per = [
            (ResourceKind::Luts, self.luts, budget.luts),
            (ResourceKind::Ffs, self.ffs, budget.ffs),
            (ResourceKind::Brams, self.brams, budget.brams),
            (ResourceKind::Dsps, self.dsps, budget.dsps),
        ];
        per.into_iter()
            .map(|(kind, used, avail)| {
                let copies = avail.checked_div(used).unwrap_or(u64::MAX);
                (kind, copies)
            })
            .min_by_key(|(_, copies)| *copies)
            .expect("four resource classes")
    }
}

/// Utilization fractions per resource class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceUtilization {
    /// LUT utilization.
    pub luts: f64,
    /// FF utilization.
    pub ffs: f64,
    /// BRAM utilization.
    pub brams: f64,
    /// DSP utilization.
    pub dsps: f64,
}

impl ResourceUtilization {
    /// The maximum utilization over all resource classes.
    pub fn max(&self) -> f64 {
        self.luts.max(self.ffs).max(self.brams).max(self.dsps)
    }
}

/// A resource class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResourceKind {
    /// Look-up tables.
    Luts,
    /// Flip-flops.
    Ffs,
    /// Block RAMs.
    Brams,
    /// DSP slices.
    Dsps,
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, o: Resources) -> Resources {
        Resources {
            luts: self.luts + o.luts,
            ffs: self.ffs + o.ffs,
            brams: self.brams + o.brams,
            dsps: self.dsps + o.dsps,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, o: Resources) {
        *self = *self + o;
    }
}

impl Mul<u64> for Resources {
    type Output = Resources;
    fn mul(self, n: u64) -> Resources {
        Resources {
            luts: self.luts * n,
            ffs: self.ffs * n,
            brams: self.brams * n,
            dsps: self.dsps * n,
        }
    }
}

/// Incremental cost of adding one more FOP PE beyond the first, derived from the two rows of
/// Table 2. The sorter and controller are shared, which is why the increment is well below the
/// single-PE total ("less than two times increase", Sec. 5.4).
pub fn per_extra_pe() -> Resources {
    Resources {
        luts: FLEX_TWO_PE.luts - FLEX_ONE_PE.luts,
        ffs: FLEX_TWO_PE.ffs - FLEX_ONE_PE.ffs,
        brams: FLEX_TWO_PE.brams - FLEX_ONE_PE.brams,
        dsps: FLEX_TWO_PE.dsps - FLEX_ONE_PE.dsps,
    }
}

/// Estimated resource consumption of a FLEX design with `num_pes` FOP PEs (Table 2 reproduces
/// `num_pes = 1` and `2` exactly; larger counts extrapolate linearly with the per-PE increment).
pub fn flex_resources(num_pes: u64) -> Resources {
    assert!(num_pes >= 1, "at least one FOP PE is required");
    FLEX_ONE_PE + per_extra_pe() * (num_pes - 1)
}

/// The largest number of FOP PEs that fits on a budget, and the resource class that binds.
pub fn max_pes(budget: &Resources) -> (u64, ResourceKind) {
    let mut n = 1;
    while flex_resources(n + 1).fits_in(budget) {
        n += 1;
    }
    // identify the binding class at n+1
    let next = flex_resources(n + 1);
    let binding = [
        (ResourceKind::Luts, next.luts, budget.luts),
        (ResourceKind::Ffs, next.ffs, budget.ffs),
        (ResourceKind::Brams, next.brams, budget.brams),
        (ResourceKind::Dsps, next.dsps, budget.dsps),
    ]
    .into_iter()
    .filter(|(_, used, avail)| used > avail)
    .map(|(k, _, _)| k)
    .next()
    .unwrap_or(ResourceKind::Brams);
    (n, binding)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rows_fit_the_u50() {
        assert!(FLEX_ONE_PE.fits_in(&ALVEO_U50));
        assert!(FLEX_TWO_PE.fits_in(&ALVEO_U50));
        assert!(!ALVEO_U50.fits_in(&FLEX_ONE_PE));
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // the Table 2 constants ARE the subject here
    fn flex_resources_reproduces_table2() {
        assert_eq!(flex_resources(1), FLEX_ONE_PE);
        assert_eq!(flex_resources(2), FLEX_TWO_PE);
        // "less than two times increase in LUT and FF usage" (Sec. 5.4)
        assert!(FLEX_TWO_PE.luts < 2 * FLEX_ONE_PE.luts);
        assert!(FLEX_TWO_PE.ffs < 2 * FLEX_ONE_PE.ffs);
    }

    #[test]
    fn bram_is_the_scaling_bound() {
        let (n, binding) = max_pes(&ALVEO_U50);
        // with 347 extra BRAMs per PE and 1344 available, BRAM binds first (Sec. 5.4)
        assert_eq!(binding, ResourceKind::Brams);
        assert!(
            (3..=4).contains(&n),
            "U50 should fit 3-4 PEs before BRAM runs out, got {n}"
        );
        assert!(flex_resources(n).fits_in(&ALVEO_U50));
        assert!(!flex_resources(n + 1).fits_in(&ALVEO_U50));
    }

    #[test]
    fn utilization_and_replication() {
        let u = FLEX_TWO_PE.utilization(&ALVEO_U50);
        assert!(u.brams > 0.5 && u.brams < 0.6);
        assert!(u.max() == u.brams);
        let (kind, copies) = FLEX_ONE_PE.replication_limit(&ALVEO_U50);
        assert_eq!(kind, ResourceKind::Brams);
        assert_eq!(copies, 1_344 / 391);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Resources::new(1, 2, 3, 4);
        let b = Resources::new(10, 20, 30, 40);
        assert_eq!(a + b, Resources::new(11, 22, 33, 44));
        let mut c = a;
        c += b;
        assert_eq!(c, Resources::new(11, 22, 33, 44));
        assert_eq!(a * 3, Resources::new(3, 6, 9, 12));
    }
}
