//! On-chip RAM models: dual-port BRAM banks, odd-even banking, ping-pong buffers.
//!
//! The SACS architecture keeps its tables (LCT, LCPT, CST, LSC, Cs) in BRAM. BRAM bandwidth —
//! the number of entries that can be read per cycle — becomes the bottleneck when multi-row
//! cells need several rows' worth of cursor data at once. Sec. 4.3.2 lists the three
//! countermeasures FLEX applies (odd-even banking, ping-pong initialization, a faster memory
//! clock domain plus LCT duplication); each is modelled here so the Fig. 9 ablation can be
//! reproduced.

use crate::clock::Cycles;
use serde::{Deserialize, Serialize};

/// A single BRAM bank with a fixed number of read ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BramBank {
    /// Entries the bank can hold.
    pub depth: u64,
    /// Parallel read ports (true dual-port BRAM has 2).
    pub read_ports: u64,
    /// Parallel write ports.
    pub write_ports: u64,
}

impl BramBank {
    /// A true dual-port bank (2 read, 2 write ports), the configuration assumed in Sec. 4.3.2.
    pub fn dual_port(depth: u64) -> Self {
        Self {
            depth,
            read_ports: 2,
            write_ports: 2,
        }
    }

    /// Cycles to read `n` entries.
    pub fn read_cycles(&self, n: u64) -> Cycles {
        if n == 0 {
            return Cycles::ZERO;
        }
        Cycles(n.div_ceil(self.read_ports.max(1)))
    }

    /// Cycles to write `n` entries.
    pub fn write_cycles(&self, n: u64) -> Cycles {
        if n == 0 {
            return Cycles::ZERO;
        }
        Cycles(n.div_ceil(self.write_ports.max(1)))
    }

    /// Cycles to initialize (fill) the whole bank.
    pub fn init_cycles(&self) -> Cycles {
        self.write_cycles(self.depth)
    }
}

/// Row-indexed storage split into an odd bank and an even bank, doubling the usable bandwidth
/// for accesses that span adjacent rows (a multi-row cell always touches alternating parities).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OddEvenBram {
    /// The bank holding even rows.
    pub even: BramBank,
    /// The bank holding odd rows.
    pub odd: BramBank,
}

impl OddEvenBram {
    /// Split a row-indexed table of `rows` entries into odd/even dual-port banks.
    pub fn new(rows: u64) -> Self {
        Self {
            even: BramBank::dual_port(rows.div_ceil(2)),
            odd: BramBank::dual_port(rows / 2),
        }
    }

    /// Cycles to read the cursor entries of `rows` **adjacent** rows starting at `first_row`.
    ///
    /// Adjacent rows alternate between the banks, so the two banks serve the request in
    /// parallel: e.g. 4 adjacent rows on dual-port banks take a single cycle instead of two.
    pub fn read_adjacent_rows(&self, first_row: i64, rows: u64) -> Cycles {
        if rows == 0 {
            return Cycles::ZERO;
        }
        let first_is_even = first_row.rem_euclid(2) == 0;
        let evens = if first_is_even {
            rows.div_ceil(2)
        } else {
            rows / 2
        };
        let odds = rows - evens;
        self.even.read_cycles(evens).max(self.odd.read_cycles(odds))
    }
}

/// Cycles to read `rows` adjacent row entries from a *single* (non-banked) dual-port table —
/// the baseline the odd-even optimization is compared against.
pub fn single_bank_adjacent_rows(rows: u64) -> Cycles {
    BramBank::dual_port(rows.max(1)).read_cycles(rows)
}

/// A double buffer: while the PE works out of the active buffer, the controller initializes the
/// shadow buffer with the next localRegion's data, hiding the load latency (Sec. 3.1.2 / 5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PingPongBuffer {
    /// The bank behind each of the two buffers.
    pub bank: BramBank,
    /// Which buffer is currently active (0 or 1).
    pub active: u8,
    /// Whether the shadow buffer has been preloaded for the next region.
    pub shadow_ready: bool,
}

impl PingPongBuffer {
    /// Create a ping-pong buffer over two identical banks.
    pub fn new(bank: BramBank) -> Self {
        Self {
            bank,
            active: 0,
            shadow_ready: false,
        }
    }

    /// Cycles needed to load `entries` into the shadow buffer.
    pub fn preload_cycles(&self, entries: u64) -> Cycles {
        self.bank.write_cycles(entries)
    }

    /// Mark the shadow buffer as preloaded.
    pub fn mark_preloaded(&mut self) {
        self.shadow_ready = true;
    }

    /// Swap buffers at a region boundary. Returns the *visible* stall: zero when the shadow was
    /// preloaded while the previous region was processed, otherwise the full load cost.
    pub fn swap(&mut self, entries: u64) -> Cycles {
        let stall = if self.shadow_ready {
            Cycles::ZERO
        } else {
            self.preload_cycles(entries)
        };
        self.active ^= 1;
        self.shadow_ready = false;
        stall
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dual_port_bank_reads_two_per_cycle() {
        let b = BramBank::dual_port(128);
        assert_eq!(b.read_cycles(0), Cycles(0));
        assert_eq!(b.read_cycles(1), Cycles(1));
        assert_eq!(b.read_cycles(2), Cycles(1));
        assert_eq!(b.read_cycles(5), Cycles(3));
        assert_eq!(b.write_cycles(4), Cycles(2));
        assert_eq!(b.init_cycles(), Cycles(64));
    }

    #[test]
    fn odd_even_banking_doubles_adjacent_row_bandwidth() {
        let oe = OddEvenBram::new(64);
        // the paper's example: four adjacent cells spanning odd and even rows take one cycle
        assert_eq!(oe.read_adjacent_rows(0, 4), Cycles(1));
        assert_eq!(single_bank_adjacent_rows(4), Cycles(2));
        // taller spans still halve the latency
        assert_eq!(oe.read_adjacent_rows(3, 6), Cycles(2));
        assert_eq!(single_bank_adjacent_rows(6), Cycles(3));
        // single-row accesses see no benefit
        assert_eq!(oe.read_adjacent_rows(5, 1), Cycles(1));
        assert_eq!(oe.read_adjacent_rows(5, 0), Cycles(0));
    }

    #[test]
    fn odd_even_split_sizes() {
        let oe = OddEvenBram::new(7);
        assert_eq!(oe.even.depth, 4);
        assert_eq!(oe.odd.depth, 3);
    }

    #[test]
    fn ping_pong_hides_preload_when_marked() {
        let mut pp = PingPongBuffer::new(BramBank::dual_port(256));
        // not preloaded: the swap pays the full load
        assert_eq!(pp.swap(100), Cycles(50));
        assert_eq!(pp.active, 1);
        // preloaded during the previous region: free swap
        pp.mark_preloaded();
        assert_eq!(pp.swap(100), Cycles(0));
        assert_eq!(pp.active, 0);
        // the ready flag is consumed by the swap
        assert_eq!(pp.swap(10), Cycles(5));
    }
}
