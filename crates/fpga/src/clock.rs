//! Clock domains and cycle accounting.
//!
//! FLEX runs its PEs at 285 MHz; the SACS memory tables (LCT, LCPT, CST, LSC) sit in a second
//! clock domain at twice that frequency so that multi-row cell accesses complete in fewer PE
//! cycles (Sec. 4.3.2). This module provides the conversion plumbing.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};
use std::time::Duration;

/// A number of clock cycles in some domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// The raw cycle count.
    pub fn count(&self) -> u64 {
        self.0
    }

    /// Saturating multiplication by a scalar.
    pub fn times(&self, n: u64) -> Cycles {
        Cycles(self.0.saturating_mul(n))
    }

    /// The larger of two cycle counts.
    pub fn max(self, other: Cycles) -> Cycles {
        Cycles(self.0.max(other.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

/// A clock domain characterized by its frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockDomain {
    /// Frequency in MHz.
    pub freq_mhz: f64,
}

impl ClockDomain {
    /// The 285 MHz PE clock used in the paper's evaluation.
    pub const FLEX_PE: ClockDomain = ClockDomain { freq_mhz: 285.0 };

    /// Create a domain from a frequency in MHz.
    pub fn mhz(freq_mhz: f64) -> Self {
        Self { freq_mhz }
    }

    /// A domain at `factor ×` this domain's frequency (e.g. the 2× memory domain of SACS).
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            freq_mhz: self.freq_mhz * factor,
        }
    }

    /// Period of one cycle in nanoseconds.
    pub fn period_ns(&self) -> f64 {
        1000.0 / self.freq_mhz
    }

    /// Convert cycles in this domain to wall-clock time.
    pub fn to_duration(&self, cycles: Cycles) -> Duration {
        Duration::from_secs_f64(cycles.0 as f64 * self.period_ns() * 1e-9)
    }

    /// Convert a duration to (rounded-up) cycles in this domain.
    pub fn to_cycles(&self, d: Duration) -> Cycles {
        // the tiny epsilon keeps exact multiples of the period from rounding up spuriously
        Cycles(
            ((d.as_secs_f64() / (self.period_ns() * 1e-9)) - 1e-9)
                .ceil()
                .max(0.0) as u64,
        )
    }

    /// Convert a cycle count from another (faster or slower) domain into this domain,
    /// rounding up — e.g. 3 cycles of the 2× memory domain cost 2 PE cycles.
    pub fn from_domain(&self, cycles: Cycles, other: &ClockDomain) -> Cycles {
        if cycles.0 == 0 {
            return Cycles::ZERO;
        }
        let ratio = self.freq_mhz / other.freq_mhz;
        Cycles(((cycles.0 as f64) * ratio).ceil() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let a = Cycles(10) + Cycles(5);
        assert_eq!(a, Cycles(15));
        let mut b = Cycles(3);
        b += Cycles(4);
        assert_eq!(b.count(), 7);
        assert_eq!(Cycles(3).times(4), Cycles(12));
        assert_eq!(Cycles(3).max(Cycles(9)), Cycles(9));
        let total: Cycles = [Cycles(1), Cycles(2), Cycles(3)].into_iter().sum();
        assert_eq!(total, Cycles(6));
    }

    #[test]
    fn flex_pe_clock_period() {
        let pe = ClockDomain::FLEX_PE;
        assert!((pe.period_ns() - 3.508).abs() < 0.01);
        let d = pe.to_duration(Cycles(285_000_000));
        assert!((d.as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn duration_roundtrip() {
        let pe = ClockDomain::mhz(100.0);
        let cycles = pe.to_cycles(Duration::from_micros(10));
        assert_eq!(cycles, Cycles(1000));
        assert_eq!(pe.to_duration(cycles), Duration::from_micros(10));
    }

    #[test]
    fn cross_domain_conversion_rounds_up() {
        let pe = ClockDomain::FLEX_PE;
        let mem = pe.scaled(2.0);
        // 3 memory cycles = 1.5 PE cycles → 2 PE cycles
        assert_eq!(pe.from_domain(Cycles(3), &mem), Cycles(2));
        assert_eq!(pe.from_domain(Cycles(0), &mem), Cycles(0));
        // converting into the faster domain doubles the count
        assert_eq!(mem.from_domain(Cycles(3), &pe), Cycles(6));
    }
}
