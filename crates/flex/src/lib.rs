//! # flex-core — the FLEX FPGA-CPU legalization accelerator
//!
//! This crate is the paper's primary contribution: the co-designed accelerator that couples the
//! MGL legalization flow (`flex-mgl`) with an FPGA performance/resource model (`flex-fpga`).
//! The functional legalization runs for real on the host (so every quality number is genuine);
//! the crate then replays the recorded work trace through the FLEX architecture model to predict
//! what the Alveo U50 implementation would cost, which is how the paper's runtime and ablation
//! figures are reproduced.
//!
//! * [`config`] — the accelerator configuration (PE count, pipeline mode, SACS architecture
//!   options, task assignment) with presets for every ablation point in Figs. 8–10.
//! * [`task_assign`] — the CPU/FPGA task split of Sec. 3.1.1 and its communication model.
//! * [`sacs_arch`] — the SACS PE architecture of Sec. 4.3 (tables, dataflow, bandwidth
//!   optimizations) as a cycle model.
//! * [`fop_pipeline`] — the FOP PE: cell shifting plus the breakpoint pipeline, in normal,
//!   SACS-only, and multi-granularity configurations (Sec. 3.2).
//! * [`timing`] — end-to-end runtime estimation combining CPU work, FPGA cycles and transfers.
//! * [`accelerator`] — [`accelerator::FlexAccelerator`], the user-facing entry point.
//! * [`session`] — the unified engine API surface: [`session::EngineKind`] (one factory for
//!   every legalizer in the workspace behind `Box<dyn Legalizer>`) and the builder-style
//!   [`session::FlexSession`] comparison harness.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod accelerator;
pub mod config;
pub mod fop_pipeline;
pub mod sacs_arch;
pub mod session;
pub mod task_assign;
pub mod timing;

pub use accelerator::{FlexAccelerator, FlexOutcome};
pub use config::{FlexConfig, PipelineMode, SacsArchConfig, TaskAssignment};
pub use flex_mgl::api::{DisplacementSummary, LegalizeReport, Legalizer, RuntimeBreakdown};
pub use session::{EngineKind, EngineRun, FlexSession};
pub use timing::FlexTiming;
