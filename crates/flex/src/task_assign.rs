//! Task assignment between CPU and FPGA (Sec. 3.1.1) and its communication model.
//!
//! FLEX keeps the serial, scheduling-heavy steps — input & pre-move (a), process ordering (b),
//! defining the localRegion (c) and insert & update (e) — on the CPU and offloads only the
//! FOP (d) to the FPGA. The alternative of also offloading (e) forces every updated cell
//! position back across the link and stops the CPU from preparing the next region while the
//! FPGA computes, which is what the Fig. 10 ablation quantifies.

use crate::config::TaskAssignment;
use flex_fpga::link::{LinkModel, BYTES_PER_CELL, BYTES_PER_RESULT, BYTES_PER_SEGMENT};
use flex_mgl::stats::RegionWork;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// The five steps of the legalization flow (Fig. 3(e)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowStep {
    /// (a) input & pre-move.
    InputPreMove,
    /// (b) process ordering.
    ProcessOrdering,
    /// (c) define localRegion.
    DefineLocalRegion,
    /// (d) finding the optimal position.
    Fop,
    /// (e) insert & update.
    InsertUpdate,
}

/// Where a step executes under a given assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Executor {
    /// Runs on the host CPU.
    Cpu,
    /// Runs on the FPGA.
    Fpga,
}

/// Fraction of the CPU-side non-FOP time that step (e) — insert & update — accounts for.
/// Step (e) performs a shifting pass similar to FOP's, so it dominates the non-FOP time.
pub const INSERT_UPDATE_SHARE: f64 = 0.35;

/// Amdahl-style model of how the CPU-side work scales when steps (a)–(c) are spread across
/// region shards on `threads` workers: region preparation parallelizes, the in-order commit
/// of step (e) does not. Returns the multiplier on the serial non-FOP time (1.0 for one
/// thread, approaching [`INSERT_UPDATE_SHARE`] as threads grow).
pub fn host_overlap_factor(threads: usize) -> f64 {
    let threads = threads.max(1) as f64;
    INSERT_UPDATE_SHARE + (1.0 - INSERT_UPDATE_SHARE) / threads
}

/// Which device executes `step` under `assignment`.
pub fn executor(assignment: TaskAssignment, step: FlowStep) -> Executor {
    match (assignment, step) {
        (TaskAssignment::AllCpu, _) => Executor::Cpu,
        (_, FlowStep::InputPreMove | FlowStep::ProcessOrdering | FlowStep::DefineLocalRegion) => {
            Executor::Cpu
        }
        (TaskAssignment::FopOnFpga, FlowStep::Fop) => Executor::Fpga,
        (TaskAssignment::FopOnFpga, FlowStep::InsertUpdate) => Executor::Cpu,
        (TaskAssignment::FopAndUpdateOnFpga, FlowStep::Fop | FlowStep::InsertUpdate) => {
            Executor::Fpga
        }
    }
}

/// Per-region traffic (bytes) between the CPU and the FPGA under a given assignment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionTraffic {
    /// Bytes shipped to the card before its FOP can start.
    pub download: u64,
    /// Bytes returned to the host after the region is done.
    pub upload: u64,
}

/// Traffic needed for one region's work under `assignment`.
pub fn region_traffic(assignment: TaskAssignment, work: &RegionWork) -> RegionTraffic {
    match assignment {
        TaskAssignment::AllCpu => RegionTraffic::default(),
        TaskAssignment::FopOnFpga => RegionTraffic {
            download: work.local_cells * BYTES_PER_CELL + work.segments * BYTES_PER_SEGMENT,
            // only the chosen insertion point and optimal position come back; the CPU redoes the
            // (cheap) committing shift as part of step (e)
            upload: 2 * BYTES_PER_RESULT,
        },
        TaskAssignment::FopAndUpdateOnFpga => RegionTraffic {
            download: work.local_cells * BYTES_PER_CELL + work.segments * BYTES_PER_SEGMENT,
            // every localCell position may have changed and must be written back to the host
            upload: (work.local_cells + 1) * BYTES_PER_RESULT,
        },
    }
}

/// Visible (non-overlappable) transfer time of one region.
///
/// With the ping-pong preload of Sec. 3.1.2 the download of a region whose window does not
/// overlap the currently processed one is hidden behind computation; overlapping successors and
/// every upload stay on the critical path. Offloading step (e) additionally serializes the
/// upload with the CPU's bookkeeping, so nothing can be hidden there.
pub fn visible_transfer(
    assignment: TaskAssignment,
    link: &LinkModel,
    work: &RegionWork,
    preload_enabled: bool,
    is_first_region: bool,
) -> Duration {
    let traffic = region_traffic(assignment, work);
    if traffic.download == 0 && traffic.upload == 0 {
        return Duration::ZERO;
    }
    let download_hidden = match assignment {
        TaskAssignment::FopOnFpga => {
            preload_enabled && !work.next_region_overlaps && !is_first_region
        }
        TaskAssignment::FopAndUpdateOnFpga => false,
        TaskAssignment::AllCpu => true,
    };
    let mut t = Duration::ZERO;
    if !download_hidden {
        t += link.transfer(traffic.download);
    }
    t += link.transfer(traffic.upload);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use flex_placement::cell::CellId;

    fn work(cells: u64, overlaps: bool) -> RegionWork {
        RegionWork {
            target: CellId(0),
            local_cells: cells,
            segments: 9,
            next_region_overlaps: overlaps,
            ..RegionWork::default()
        }
    }

    #[test]
    fn flex_assignment_matches_the_paper() {
        use FlowStep::*;
        for step in [
            InputPreMove,
            ProcessOrdering,
            DefineLocalRegion,
            InsertUpdate,
        ] {
            assert_eq!(executor(TaskAssignment::FopOnFpga, step), Executor::Cpu);
        }
        assert_eq!(executor(TaskAssignment::FopOnFpga, Fop), Executor::Fpga);
        assert_eq!(
            executor(TaskAssignment::FopAndUpdateOnFpga, InsertUpdate),
            Executor::Fpga
        );
        assert_eq!(executor(TaskAssignment::AllCpu, Fop), Executor::Cpu);
    }

    #[test]
    fn offloading_step_e_multiplies_upload_traffic() {
        let w = work(60, false);
        let flex = region_traffic(TaskAssignment::FopOnFpga, &w);
        let alt = region_traffic(TaskAssignment::FopAndUpdateOnFpga, &w);
        assert_eq!(flex.download, alt.download);
        assert!(alt.upload > 10 * flex.upload);
        assert_eq!(
            region_traffic(TaskAssignment::AllCpu, &w),
            RegionTraffic::default()
        );
    }

    #[test]
    fn preload_hides_downloads_of_non_overlapping_regions() {
        let link = LinkModel::default();
        let hidden = visible_transfer(
            TaskAssignment::FopOnFpga,
            &link,
            &work(60, false),
            true,
            false,
        );
        let shown = visible_transfer(
            TaskAssignment::FopOnFpga,
            &link,
            &work(60, true),
            true,
            false,
        );
        let first = visible_transfer(
            TaskAssignment::FopOnFpga,
            &link,
            &work(60, false),
            true,
            true,
        );
        assert!(hidden < shown);
        assert!(first > hidden);
        // with preload disabled every download is visible
        let no_preload = visible_transfer(
            TaskAssignment::FopOnFpga,
            &link,
            &work(60, false),
            false,
            false,
        );
        assert_eq!(no_preload, shown);
    }

    #[test]
    fn host_overlap_factor_is_amdahl_shaped() {
        assert!((host_overlap_factor(1) - 1.0).abs() < 1e-12);
        assert!(host_overlap_factor(2) < host_overlap_factor(1));
        assert!(host_overlap_factor(8) < host_overlap_factor(4));
        // the serial commit share bounds the speedup
        assert!(host_overlap_factor(1_000_000) > INSERT_UPDATE_SHARE - 1e-9);
        assert!(host_overlap_factor(0) == host_overlap_factor(1));
    }

    #[test]
    fn all_cpu_has_no_visible_transfers() {
        let link = LinkModel::default();
        assert_eq!(
            visible_transfer(TaskAssignment::AllCpu, &link, &work(60, true), true, true),
            Duration::ZERO
        );
    }
}
