//! Cycle model of the SACS PE architecture (Sec. 4.3).
//!
//! The SACS hardware keeps its spatial data in five BRAM tables — the localCells Table (LCT),
//! the localCells position Table (LCPT), the pre-sorted cell list (Cs), the per-segment cell
//! lists (LSC) and the CurSeg Table (CST) holding the CSP/CSE cursors — and streams one cell per
//! initiation interval through the dataflow of Fig. 7(b). Multi-row cells need one cursor access
//! per row they span, which is where BRAM bandwidth becomes the bottleneck and where the
//! odd-even banking / ping-pong initialization / double-rate memory clock of Sec. 4.3.2 pay off.
//!
//! The model below turns the work counters recorded by the functional SACS run (cells sorted,
//! cursor queries, queries issued by cells taller than three rows) into PE cycles for each of
//! the Fig. 9 ablation points: plain `SACS`, `SACS-Ar`, `SACS-ImpBW`, and `SACS-Paral`.

use crate::config::SacsArchConfig;
use flex_fpga::clock::Cycles;
use flex_fpga::resources::Resources;
use flex_fpga::sorter::SorterModel;
use flex_mgl::stats::RegionWork;

/// Dataflow stages of one SACS iteration (Fig. 7(b): Cs→LCT, LCT→PE, PE→CST, CST→LSC, LSC→LCT,
/// LCT→PE, compute, write-back).
pub const DATAFLOW_STAGES: u64 = 8;

/// Cycle model of one SACS PE.
#[derive(Debug, Clone)]
pub struct SacsPeModel {
    /// Architecture options (the Fig. 9 ablation).
    pub config: SacsArchConfig,
    /// The Ahead Sorter in front of the PE.
    pub sorter: SorterModel,
}

impl SacsPeModel {
    /// Create a model for the given architecture options.
    pub fn new(config: SacsArchConfig) -> Self {
        Self {
            config,
            sorter: SorterModel::default(),
        }
    }

    /// Cycles spent pre-sorting the localCells of a region (the Ahead Sorter).
    pub fn sort_cycles(&self, work: &RegionWork) -> Cycles {
        // the sorter runs once per evaluated insertion point on the region's cell list; the
        // recorded `sorted_cells` already aggregates cells × points
        self.sorter.sort_cycles(work.sorted_cells)
    }

    /// Cycles spent in the shifting dataflow itself for one region's worth of work.
    pub fn shift_cycles(&self, work: &RegionWork) -> Cycles {
        let cells = work.sorted_cells.max(1);
        let queries = work.bound_queries;
        // extra cursor accesses beyond the one-per-cell the pipeline absorbs at II = 1
        let extra_queries = queries.saturating_sub(cells);

        let base = if self.config.pipelined {
            // SACS-Ar: fully pipelined dataflow, one cell per cycle plus fill latency
            Cycles(cells + DATAFLOW_STAGES)
        } else {
            // plain SACS mapped naively: every cell walks the whole dataflow sequentially
            Cycles(cells * DATAFLOW_STAGES)
        };

        // bandwidth stalls: a dual-port CST/LSC serves two row queries per cycle; the improved-
        // bandwidth package (odd-even banks + 2× memory clock + LCT duplication) serves eight
        let stall_divisor = if self.config.improved_bandwidth { 8 } else { 2 };
        let stalls = Cycles(extra_queries.div_ceil(stall_divisor));

        let mut total = base + stalls;
        if self.config.parallel_phases {
            // left-move and right-move run concurrently; the paper reports near-halving with a
            // small imbalance penalty
            total = Cycles((total.count() as f64 * 0.55).ceil() as u64);
        }
        total
    }

    /// Total SACS PE cycles for a region (sorting + shifting).
    pub fn region_cycles(&self, work: &RegionWork) -> Cycles {
        self.sort_cycles(work) + self.shift_cycles(work)
    }

    /// Cycles the *original* multi-pass shifting algorithm would need on the FPGA for the same
    /// work: every subcell visit pays the full dataflow plus an intermediate-result round trip,
    /// and the pass structure prevents any streaming overlap.
    pub fn original_shift_cycles(work: &RegionWork) -> Cycles {
        let visits = work.subcell_visits.max(work.bound_queries);
        Cycles(visits * (DATAFLOW_STAGES + 2) + work.shift_passes * DATAFLOW_STAGES)
    }

    /// Approximate resource cost of the SACS PE (tables plus the sorter).
    pub fn resources(&self) -> Resources {
        let tables = Resources::new(9_000, 11_000, 96, 2);
        let bw = if self.config.improved_bandwidth {
            // odd-even split + duplicated LCT roughly doubles the BRAM count of the tables
            Resources::new(1_500, 2_000, 96, 0)
        } else {
            Resources::default()
        };
        tables + bw + self.sorter.resources()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flex_placement::cell::CellId;

    fn work(sorted: u64, queries: u64, tall: u64) -> RegionWork {
        RegionWork {
            target: CellId(0),
            sorted_cells: sorted,
            bound_queries: queries,
            tall_bound_queries: tall,
            subcell_visits: queries,
            shift_passes: 3,
            ..RegionWork::default()
        }
    }

    #[test]
    fn pipelining_gives_a_large_speedup() {
        let w = work(200, 260, 0);
        let plain = SacsPeModel::new(SacsArchConfig::algorithm_only());
        let ar = SacsPeModel::new(SacsArchConfig {
            pipelined: true,
            improved_bandwidth: false,
            parallel_phases: false,
        });
        let ratio = plain.shift_cycles(&w).count() as f64 / ar.shift_cycles(&w).count() as f64;
        assert!(ratio > 3.0, "pipelining speedup {ratio:.2} too small");
    }

    #[test]
    fn bandwidth_package_only_helps_with_multi_row_queries() {
        let ar = SacsPeModel::new(SacsArchConfig {
            pipelined: true,
            improved_bandwidth: false,
            parallel_phases: false,
        });
        let bw = SacsPeModel::new(SacsArchConfig {
            pipelined: true,
            improved_bandwidth: true,
            parallel_phases: false,
        });
        // single-row-only region: queries == cells, no extra accesses, no benefit
        let flat = work(100, 100, 0);
        assert_eq!(ar.shift_cycles(&flat), bw.shift_cycles(&flat));
        // tall-cell-heavy region: many extra accesses, clear benefit
        let tall = work(100, 480, 300);
        assert!(bw.shift_cycles(&tall) < ar.shift_cycles(&tall));
    }

    #[test]
    fn parallel_phases_roughly_halve_the_cycles() {
        let seq = SacsPeModel::new(SacsArchConfig {
            pipelined: true,
            improved_bandwidth: true,
            parallel_phases: false,
        });
        let par = SacsPeModel::new(SacsArchConfig::full());
        let w = work(300, 420, 60);
        let ratio = seq.shift_cycles(&w).count() as f64 / par.shift_cycles(&w).count() as f64;
        assert!(
            (1.6..=2.0).contains(&ratio),
            "parallel-phase speedup {ratio:.2}"
        );
    }

    #[test]
    fn sacs_beats_the_original_shifting_by_2_to_3x() {
        // the paper attributes 2–3× to the SACS algorithm + architecture over the original
        // multi-pass shifting (Fig. 8, first step)
        let w = work(180, 240, 20);
        let sacs = SacsPeModel::new(SacsArchConfig::full());
        let orig = SacsPeModel::original_shift_cycles(&w);
        let full = sacs.region_cycles(&w);
        let ratio = orig.count() as f64 / full.count() as f64;
        assert!(ratio > 1.8, "SACS speedup {ratio:.2} too small");
        assert!(ratio < 8.0, "SACS speedup {ratio:.2} implausibly large");
    }

    #[test]
    fn resources_stay_small_and_grow_with_bandwidth_package() {
        let small = SacsPeModel::new(SacsArchConfig::algorithm_only()).resources();
        let big = SacsPeModel::new(SacsArchConfig::full()).resources();
        assert!(big.brams > small.brams);
        assert!(big.luts < flex_fpga::resources::FLEX_ONE_PE.luts);
    }
}
