//! Engine selection and comparison sessions over the unified [`Legalizer`] API.
//!
//! [`EngineKind`] names every legalization engine in the workspace and
//! [`EngineKind::build`] is the one factory that turns a [`FlexConfig`] into a
//! `Box<dyn Legalizer>`, so an engine sweep is a one-liner:
//!
//! ```
//! use flex_core::session::EngineKind;
//! use flex_core::config::FlexConfig;
//! # use flex_placement::benchmark::{generate, BenchmarkSpec};
//! let cfg = FlexConfig::flex();
//! for kind in EngineKind::all() {
//!     let engine = kind.build(&cfg);
//!     let mut design = generate(&BenchmarkSpec::tiny("sweep", 1));
//!     let report = engine.legalize(&mut design);
//!     println!("{:<18} {:8.3} {:10.4}s", kind.name(), report.displacement.average, report.seconds());
//! }
//! ```
//!
//! [`FlexSession`] is the builder on top: design in, pick engine(s), run, and get one
//! [`LegalizeReport`] per engine, each computed on its own copy of the input placement.

use crate::accelerator::FlexAccelerator;
use crate::config::FlexConfig;
use flex_baselines::analytical::AnalyticalLegalizer;
use flex_baselines::cpu::CpuLegalizer;
use flex_baselines::cpu_gpu::CpuGpuLegalizer;
use flex_mgl::api::{LegalizeReport, Legalizer};
use flex_mgl::legalize::MglLegalizer;
use flex_mgl::parallel::ParallelMglLegalizer;
use flex_placement::layout::Design;

/// Every legalization engine the workspace implements, as a closed enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The serial MGL legalizer (`flex_mgl::MglLegalizer`).
    MglSerial,
    /// The deterministic region-sharded parallel MGL engine
    /// (`flex_mgl::parallel::ParallelMglLegalizer`).
    MglParallel,
    /// The TCAD'22 multi-threaded CPU baseline (`flex_baselines::cpu::CpuLegalizer`).
    CpuMgl,
    /// The DATE'22 CPU-GPU baseline (`flex_baselines::cpu_gpu::CpuGpuLegalizer`).
    CpuGpu,
    /// The ISPD'25 LEGALM-style analytical baseline
    /// (`flex_baselines::analytical::AnalyticalLegalizer`).
    Analytical,
    /// The FLEX accelerator (`crate::accelerator::FlexAccelerator`).
    Flex,
}

impl EngineKind {
    /// All six engines, in the order the paper's comparison tables list them.
    pub const fn all() -> [EngineKind; 6] {
        [
            EngineKind::MglSerial,
            EngineKind::MglParallel,
            EngineKind::CpuMgl,
            EngineKind::CpuGpu,
            EngineKind::Analytical,
            EngineKind::Flex,
        ]
    }

    /// Stable machine-readable name; matches [`Legalizer::name`] of the built engine.
    pub const fn name(self) -> &'static str {
        match self {
            EngineKind::MglSerial => "mgl-serial",
            EngineKind::MglParallel => "mgl-parallel",
            EngineKind::CpuMgl => "tcad22-cpu",
            EngineKind::CpuGpu => "date22-cpu-gpu",
            EngineKind::Analytical => "ispd25-analytical",
            EngineKind::Flex => "flex",
        }
    }

    /// Build the engine for `config`.
    ///
    /// The MGL family and FLEX derive their algorithm settings from `config`
    /// ([`FlexConfig::mgl_config`], `host_threads`); the three baselines keep the
    /// configurations of the papers they reproduce (the TCAD'22 engine only takes its worker
    /// count from `config.host_threads`), so a sweep compares the *published* systems, not
    /// six reconfigurations of one algorithm.
    pub fn build(self, config: &FlexConfig) -> Box<dyn Legalizer> {
        match self {
            EngineKind::MglSerial => Box::new(MglLegalizer::new(config.mgl_config())),
            EngineKind::MglParallel => Box::new(
                ParallelMglLegalizer::new(config.host_threads.max(1), config.mgl_config())
                    .with_pipeline_depth(if config.host_pipelining {
                        config.host_pipeline_depth.max(2)
                    } else {
                        1
                    }),
            ),
            EngineKind::CpuMgl => Box::new(CpuLegalizer::new(config.host_threads.max(1))),
            EngineKind::CpuGpu => Box::new(CpuGpuLegalizer::default()),
            EngineKind::Analytical => Box::new(AnalyticalLegalizer::default()),
            EngineKind::Flex => Box::new(FlexAccelerator::new(config.clone())),
        }
    }
}

/// One engine's run within a [`FlexSession`]: which engine, its uniform report, and the
/// legalized copy of the session's design (so placements can be compared cell for cell).
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// The engine that ran.
    pub kind: EngineKind,
    /// Its uniform report.
    pub report: LegalizeReport,
    /// The legalized copy of the session design this engine produced.
    pub design: Design,
}

/// Builder-style comparison session: one input design, any number of engines, uniform reports.
///
/// Each selected engine legalizes its own clone of the input design, so runs are independent
/// and their final placements remain inspectable side by side.
///
/// ```
/// use flex_core::config::FlexConfig;
/// use flex_core::session::{EngineKind, FlexSession};
/// # use flex_placement::benchmark::{generate, BenchmarkSpec};
/// let design = generate(&BenchmarkSpec::tiny("session", 2));
/// let runs = FlexSession::new(design)
///     .with_config(FlexConfig::flex())
///     .engine(EngineKind::CpuGpu)
///     .engine(EngineKind::Flex)
///     .run();
/// assert_eq!(runs.len(), 2);
/// assert!(runs.iter().all(|r| r.report.legal));
/// ```
#[derive(Debug, Clone)]
pub struct FlexSession {
    design: Design,
    config: FlexConfig,
    engines: Vec<(EngineKind, Option<FlexConfig>)>,
}

impl FlexSession {
    /// Start a session on `design` with the full FLEX configuration and no engines selected
    /// (running an empty selection defaults to [`EngineKind::Flex`]).
    pub fn new(design: Design) -> Self {
        Self {
            design,
            config: FlexConfig::flex(),
            engines: Vec::new(),
        }
    }

    /// Replace the session-wide configuration (builder style).
    pub fn with_config(mut self, config: FlexConfig) -> Self {
        self.config = config;
        self
    }

    /// Add an engine using the session configuration (builder style).
    pub fn engine(mut self, kind: EngineKind) -> Self {
        self.engines.push((kind, None));
        self
    }

    /// Add an engine with its own configuration override (builder style) — e.g. the TCAD'22
    /// baseline at 8 worker threads while FLEX keeps a serial host.
    ///
    /// Note that [`EngineKind::build`] reads `config` only for the engines that are derived
    /// from it (the MGL family, the TCAD'22 worker count, FLEX); an override passed for
    /// [`EngineKind::CpuGpu`] or [`EngineKind::Analytical`] has no effect, since those
    /// baselines keep the fixed configurations of the papers they reproduce.
    pub fn engine_with(mut self, kind: EngineKind, config: FlexConfig) -> Self {
        self.engines.push((kind, Some(config)));
        self
    }

    /// Add several engines using the session configuration (builder style).
    pub fn engines(mut self, kinds: impl IntoIterator<Item = EngineKind>) -> Self {
        self.engines.extend(kinds.into_iter().map(|k| (k, None)));
        self
    }

    /// Add all six engines (builder style).
    pub fn all_engines(self) -> Self {
        self.engines(EngineKind::all())
    }

    /// The input design the session clones for every engine.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// The session-wide configuration.
    pub fn config(&self) -> &FlexConfig {
        &self.config
    }

    /// Run every selected engine on a fresh copy of the input design, in selection order.
    pub fn run(&self) -> Vec<EngineRun> {
        let selection: Vec<(EngineKind, Option<&FlexConfig>)> = if self.engines.is_empty() {
            vec![(EngineKind::Flex, None)]
        } else {
            self.engines.iter().map(|(k, c)| (*k, c.as_ref())).collect()
        };
        selection
            .into_iter()
            .map(|(kind, config)| self.run_one(kind, config.unwrap_or(&self.config)))
            .collect()
    }

    /// Run a single engine on a fresh copy of the input design.
    pub fn run_engine(&self, kind: EngineKind) -> EngineRun {
        self.run_one(kind, &self.config)
    }

    fn run_one(&self, kind: EngineKind, config: &FlexConfig) -> EngineRun {
        let _span = flex_obs::span!("session.run_engine");
        let engine = kind.build(config);
        let mut design = self.design.clone();
        let report = engine.legalize(&mut design);
        EngineRun {
            kind,
            report,
            design,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::FlexOutcome;
    use flex_placement::benchmark::{generate, BenchmarkSpec};
    use flex_placement::legality::check_legality_with;

    #[test]
    fn factory_names_match_the_built_engines() {
        let cfg = FlexConfig::flex();
        for kind in EngineKind::all() {
            assert_eq!(kind.build(&cfg).name(), kind.name());
        }
    }

    #[test]
    fn every_engine_runs_through_the_factory() {
        let cfg = FlexConfig::flex().with_host_threads(2);
        for kind in EngineKind::all() {
            let mut d = generate(&BenchmarkSpec::tiny("factory", 61));
            let report = kind.build(&cfg).legalize(&mut d);
            assert!(
                report.legal,
                "{} produced an illegal placement",
                kind.name()
            );
            assert!(check_legality_with(&d, true).is_legal());
            assert_eq!(report.engine, kind.name());
        }
    }

    #[test]
    fn session_defaults_to_flex_and_keeps_the_input_design_pristine() {
        let design = generate(&BenchmarkSpec::tiny("session-default", 62));
        let premove_free = design.clone();
        let session = FlexSession::new(design);
        let runs = session.run();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].kind, EngineKind::Flex);
        assert!(runs[0].report.legal);
        assert!(runs[0].report.details::<FlexOutcome>().is_some());
        // the session design was cloned, not legalized in place
        let before: Vec<(i64, i64)> = premove_free.cells.iter().map(|c| (c.x, c.y)).collect();
        let after: Vec<(i64, i64)> = session.design().cells.iter().map(|c| (c.x, c.y)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn per_engine_config_overrides_apply() {
        let design = generate(&BenchmarkSpec::tiny("session-override", 63));
        let runs = FlexSession::new(design)
            .engine_with(EngineKind::CpuMgl, FlexConfig::flex().with_host_threads(4))
            .engine(EngineKind::MglSerial)
            .run();
        assert_eq!(runs.len(), 2);
        let cpu = runs[0]
            .report
            .details::<flex_baselines::cpu::CpuLegalizerResult>()
            .expect("cpu details");
        assert!(cpu.batches > 0);
        assert_eq!(runs[1].report.engine, "mgl-serial");
    }
}
