//! The user-facing FLEX accelerator.
//!
//! [`FlexAccelerator::legalize`] runs the complete flow: the host executes the MGL legalization
//! (with FLEX's sliding-window ordering and SACS shifting) to produce a *legal placement and
//! genuine quality numbers*, records the per-region work trace, and then estimates what the
//! Alveo U50 implementation of the offloaded FOP would cost, yielding the accelerated runtime
//! the paper's Table 1 reports.

pub use crate::config::FlexConfig;

use crate::timing::{self, FlexTiming, SoftwareBreakdown};
use flex_fpga::resources::{flex_resources, Resources};
use flex_mgl::api::{LegalizeReport, Legalizer, RuntimeBreakdown};
use flex_mgl::legalize::{LegalizeResult, MglLegalizer};
use flex_mgl::parallel::{ParallelMglLegalizer, ShardStats};
use flex_placement::layout::Design;

/// The FLEX accelerator.
#[derive(Debug, Clone)]
pub struct FlexAccelerator {
    config: FlexConfig,
}

/// Everything a FLEX run produces.
#[derive(Debug, Clone)]
pub struct FlexOutcome {
    /// The functional legalization result (legality, displacement, software timings, trace).
    pub result: LegalizeResult,
    /// The software-run breakdown the acceleration estimate is based on.
    pub software: SoftwareBreakdown,
    /// The estimated accelerated timing.
    pub timing: FlexTiming,
    /// FPGA resources the configured design would consume (Table 2).
    pub resources: Resources,
    /// How the host-side parallel engine executed (`None` when `host_threads` is 1 and the
    /// serial legalizer ran).
    pub shards: Option<ShardStats>,
}

impl FlexOutcome {
    /// Estimated accelerated runtime in seconds.
    pub fn seconds(&self) -> f64 {
        self.timing.total.as_secs_f64()
    }

    /// Average displacement (`S_am`) of the legalized placement.
    pub fn average_displacement(&self) -> f64 {
        self.result.average_displacement
    }
}

impl FlexAccelerator {
    /// Create an accelerator with the given configuration.
    pub fn new(config: FlexConfig) -> Self {
        Self { config }
    }

    /// The accelerator configuration.
    pub fn config(&self) -> &FlexConfig {
        &self.config
    }

    /// Legalize the design in place and estimate the accelerated runtime.
    ///
    /// With `host_threads > 1` the CPU-side steps (a)–(c) run on the region-sharded parallel
    /// engine; the placement (and therefore the quality numbers and the work trace) is
    /// identical to the serial run, only the measured host runtime changes.
    pub fn legalize(&self, design: &mut Design) -> FlexOutcome {
        let host_span = flex_obs::span!("flex.host_legalize");
        let (result, shards) = if self.config.host_threads > 1 {
            let engine =
                ParallelMglLegalizer::new(self.config.host_threads, self.config.mgl_config())
                    .with_pipelining(self.config.host_pipelining);
            let out = engine.legalize(design);
            (out.result, Some(out.shards))
        } else {
            (
                MglLegalizer::new(self.config.mgl_config()).legalize(design),
                None,
            )
        };
        drop(host_span);
        let software =
            SoftwareBreakdown::from_result_with_threads(&result, self.config.host_threads);
        let trace = result.trace.clone().unwrap_or_default();
        let timing_span = flex_obs::span!("flex.timing_estimate");
        let timing = timing::estimate(&self.config, &trace, &software);
        drop(timing_span);
        FlexOutcome {
            result,
            software,
            timing,
            resources: flex_resources(self.config.num_fop_pes),
            shards,
        }
    }
}

impl Default for FlexAccelerator {
    fn default() -> Self {
        Self::new(FlexConfig::default())
    }
}

impl Legalizer for FlexAccelerator {
    fn name(&self) -> &'static str {
        "flex"
    }

    fn legalize(&self, design: &mut Design) -> LegalizeReport {
        let outcome = FlexAccelerator::legalize(self, design);
        // wall = the measured host (software) run; estimated = the accelerated FLEX runtime,
        // which is what Table 1 compares the FLEX column on
        LegalizeReport::new(
            self.name(),
            outcome.result.legal,
            design.num_movable(),
            design,
        )
        .with_runtime(RuntimeBreakdown::modeled(
            outcome.software.total,
            outcome.timing.total,
        ))
        .with_counts(
            outcome.result.placed_in_region,
            outcome.result.fallback_placed,
            outcome.result.failed.clone(),
        )
        .with_trace(outcome.result.trace.clone())
        .with_details(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TaskAssignment;
    use flex_placement::benchmark::{generate, BenchmarkSpec};
    use flex_placement::legality::check_legality_with;

    fn design(seed: u64) -> Design {
        generate(&BenchmarkSpec::tiny("accel", seed))
    }

    #[test]
    fn flex_produces_a_legal_placement_and_a_speedup() {
        let mut d = design(11);
        let out = FlexAccelerator::default().legalize(&mut d);
        assert!(out.result.legal);
        assert!(check_legality_with(&d, true).is_legal());
        assert!(out.timing.fpga_cycles > 0);
        assert!(
            out.timing.speedup_vs_software > 1.0,
            "estimated FLEX runtime should beat the software run (got {:.2}x)",
            out.timing.speedup_vs_software
        );
        assert!(out.resources.fits_in(&flex_fpga::resources::ALVEO_U50));
        assert!(out.average_displacement() > 0.0);
    }

    #[test]
    fn quality_matches_the_pure_software_legalizer() {
        // FLEX runs the same functional algorithm; acceleration must not change quality
        let mut d1 = design(12);
        let mut d2 = design(12);
        let out = FlexAccelerator::default().legalize(&mut d1);
        let sw = MglLegalizer::new(FlexConfig::default().mgl_config()).legalize(&mut d2);
        assert!((out.average_displacement() - sw.average_displacement).abs() < 1e-12);
    }

    #[test]
    fn ablation_ordering_holds_end_to_end() {
        // Fig. 8: each optimization step may only make the estimated runtime faster
        let configs = [
            FlexConfig::normal_pipeline_baseline(),
            FlexConfig::with_sacs_only(),
            FlexConfig::with_multi_granularity(),
            FlexConfig::flex(),
        ];
        let mut times = Vec::new();
        for cfg in configs {
            let mut d = design(13);
            let out = FlexAccelerator::new(cfg).legalize(&mut d);
            assert!(out.result.legal);
            times.push(out.timing.fpga_time.as_secs_f64());
        }
        for w in times.windows(2) {
            assert!(
                w[1] <= w[0] * 1.05,
                "each Fig. 8 step should not slow the FPGA side down: {times:?}"
            );
        }
        let total_speedup = times[0] / times.last().unwrap();
        assert!(
            total_speedup > 2.0,
            "cumulative Fig. 8 speedup {total_speedup:.2}"
        );
    }

    #[test]
    fn host_threads_change_nothing_but_the_host_runtime() {
        // the parallel host engine is placement-identical to the serial one, so quality,
        // trace-derived FPGA cycles and resources must all agree — including on the FLEX
        // default configuration's dynamic sliding-window ordering, which now runs the real
        // speculative host path instead of degrading to serial
        let cfg = FlexConfig::flex();
        let mut d1 = design(15);
        let mut d2 = design(15);
        let serial = FlexAccelerator::new(cfg.clone()).legalize(&mut d1);
        let parallel = FlexAccelerator::new(cfg.with_host_threads(4)).legalize(&mut d2);
        assert!(serial.result.legal && parallel.result.legal);
        assert!(serial.shards.is_none());
        let shards = parallel.shards.as_ref().expect("parallel host engine ran");
        assert!(shards.batches > 0);
        assert!(
            shards.speculated > 0,
            "the dynamic FLEX ordering must speculate on the parallel host path"
        );
        assert_eq!(
            serial.average_displacement(),
            parallel.average_displacement(),
            "host parallelism must not change quality"
        );
        assert_eq!(serial.timing.fpga_cycles, parallel.timing.fpga_cycles);
        let p1: Vec<(i64, i64)> = d1
            .cells
            .iter()
            .filter(|c| !c.fixed)
            .map(|c| (c.x, c.y))
            .collect();
        let p2: Vec<(i64, i64)> = d2
            .cells
            .iter()
            .filter(|c| !c.fixed)
            .map(|c| (c.x, c.y))
            .collect();
        assert_eq!(p1, p2);
    }

    #[test]
    fn task_assignment_ablation_prefers_keeping_update_on_cpu() {
        // Estimate both assignments from the same recorded trace in the FPGA-bound regime
        // Fig. 10 measures (see timing::tests::offloading_insert_update_is_slower_than_flex);
        // comparing two separately *measured* tiny runs is wall-clock-noise dominated.
        let mut d1 = design(14);
        let flex = FlexAccelerator::new(FlexConfig::flex()).legalize(&mut d1);
        let trace = flex
            .result
            .trace
            .clone()
            .expect("flex config collects the trace");
        let software = crate::timing::SoftwareBreakdown::pinned_to_fpga_time(flex.timing.fpga_time);
        let base = crate::timing::estimate(&FlexConfig::flex(), &trace, &software);
        let alt = crate::timing::estimate(
            &FlexConfig::flex().with_assignment(TaskAssignment::FopAndUpdateOnFpga),
            &trace,
            &software,
        );
        assert!(alt.total > base.total, "Fig. 10 direction");
    }
}
