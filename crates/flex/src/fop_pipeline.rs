//! Cycle model of a FOP PE: cell shifting plus the breakpoint pipeline (Sec. 3.2).
//!
//! One FOP PE evaluates insertion points: for each point it runs cell shifting (SACS or the
//! original algorithm) and then the breakpoint chain (sort → merge → slopes → value). The model
//! combines the SACS PE cycle model with the pipeline models of `flex-fpga` and adds the
//! cluster-level parallelism: with two FOP PEs, two insertion points of the *same* localRegion
//! are evaluated concurrently and merged with a few synchronization cycles (Sec. 5.4) — this is
//! the insertion-point-level parallelism that avoids the heavy region-level synchronization of
//! the CPU/GPU baselines.

use crate::config::{FlexConfig, PipelineMode};
use crate::sacs_arch::SacsPeModel;
use flex_fpga::clock::Cycles;
use flex_fpga::pipeline::{
    fine_grained_cycles, normal_pipeline_cycles, original_fop_operators, reorganized_fop_groups,
};
use flex_mgl::config::ShiftAlgorithm;
use flex_mgl::stats::RegionWork;

/// Cycle model of the FOP PE cluster.
#[derive(Debug, Clone)]
pub struct FopPeModel {
    /// Accelerator configuration.
    pub config: FlexConfig,
    /// The SACS PE model used for the cell-shifting part.
    pub sacs: SacsPeModel,
}

impl FopPeModel {
    /// Build the model from an accelerator configuration.
    pub fn new(config: FlexConfig) -> Self {
        let sacs = SacsPeModel::new(config.sacs);
        Self { config, sacs }
    }

    /// Cycles one PE needs for the cell-shifting work of a region.
    pub fn shift_cycles(&self, work: &RegionWork) -> Cycles {
        match self.config.shift {
            ShiftAlgorithm::Sacs => self.sacs.region_cycles(work),
            ShiftAlgorithm::Original => SacsPeModel::original_shift_cycles(work),
        }
    }

    /// Cycles one PE needs for the breakpoint pipeline of a region (all its insertion points).
    pub fn breakpoint_cycles(&self, work: &RegionWork) -> Cycles {
        let items = work.breakpoints;
        match self.config.pipeline {
            PipelineMode::Normal => normal_pipeline_cycles(&original_fop_operators(), items),
            PipelineMode::MultiGranularity => {
                let (fwd, bwd) = reorganized_fop_groups();
                fine_grained_cycles(&fwd, items) + fine_grained_cycles(&bwd, items)
            }
        }
    }

    /// Cycles a single PE needs for the whole FOP of one region.
    pub fn single_pe_region_cycles(&self, work: &RegionWork) -> Cycles {
        let shift = self.shift_cycles(work);
        let bp = self.breakpoint_cycles(work);
        match self.config.pipeline {
            // normal pipeline: shifting finishes, parks its results, then the breakpoint chain
            // starts
            PipelineMode::Normal => shift + bp + Cycles(2 * work.breakpoints),
            // multi-granularity: shifting streams positions straight into `sort bp`, so the
            // forward part overlaps with it; only the backward traversal is serialized
            PipelineMode::MultiGranularity => {
                let (fwd, bwd) = reorganized_fop_groups();
                let fwd_c = fine_grained_cycles(&fwd, work.breakpoints);
                let bwd_c = fine_grained_cycles(&bwd, work.breakpoints);
                shift.max(fwd_c) + bwd_c
            }
        }
    }

    /// Cycles the PE *cluster* needs for one region, exploiting insertion-point-level
    /// parallelism across `num_fop_pes` PEs.
    pub fn cluster_region_cycles(&self, work: &RegionWork) -> Cycles {
        let single = self.single_pe_region_cycles(work);
        let pes = self.config.num_fop_pes.max(1);
        if pes == 1 {
            return single;
        }
        let points = work.feasible_points.max(1);
        let usable = pes.min(points);
        let spread = Cycles((single.count() as f64 / usable as f64).ceil() as u64);
        // each merge of concurrent point results costs a few synchronization cycles
        let syncs = Cycles(self.config.pe_sync_cycles * points.div_ceil(usable));
        spread + syncs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flex_placement::cell::CellId;

    fn work() -> RegionWork {
        RegionWork {
            target: CellId(0),
            insertion_points: 40,
            feasible_points: 32,
            breakpoints: 480,
            subcell_visits: 700,
            shift_passes: 64,
            sorted_cells: 600,
            bound_queries: 780,
            tall_bound_queries: 60,
            local_cells: 25,
            ..RegionWork::default()
        }
    }

    #[test]
    fn multi_granularity_beats_normal_pipeline() {
        let normal = FopPeModel::new(FlexConfig::with_sacs_only());
        let mg = FopPeModel::new(FlexConfig::with_multi_granularity());
        let w = work();
        let a = normal.single_pe_region_cycles(&w);
        let b = mg.single_pe_region_cycles(&w);
        assert!(b < a, "multi-granularity {b:?} should beat normal {a:?}");
        let speedup = a.count() as f64 / b.count() as f64;
        assert!(speedup > 1.2 && speedup < 5.0, "speedup {speedup:.2}");
    }

    #[test]
    fn sacs_plus_architecture_beats_original_shifting() {
        let baseline = FopPeModel::new(FlexConfig::normal_pipeline_baseline());
        let sacs = FopPeModel::new(FlexConfig::with_sacs_only());
        let w = work();
        let a = baseline.single_pe_region_cycles(&w);
        let b = sacs.single_pe_region_cycles(&w);
        // The cycle model yields ≈1.4× on this synthetic region mix (the breakpoint pipeline,
        // identical in both configurations, dilutes the shifting speedup); the full Fig. 8
        // stack is what reaches the paper's multi-x numbers (see full_flex_stack_is_fastest).
        let speedup = a.count() as f64 / b.count() as f64;
        assert!(speedup > 1.25, "SACS step speedup {speedup:.2} too small");
    }

    #[test]
    fn two_pes_scale_nearly_linearly() {
        let one = FopPeModel::new(FlexConfig::flex().with_pes(1));
        let two = FopPeModel::new(FlexConfig::flex().with_pes(2));
        let w = work();
        let a = one.cluster_region_cycles(&w);
        let b = two.cluster_region_cycles(&w);
        let speedup = a.count() as f64 / b.count() as f64;
        assert!(
            (1.5..=2.0).contains(&speedup),
            "2-PE speedup {speedup:.2} should be near-linear but below 2×"
        );
    }

    #[test]
    fn extra_pes_are_useless_without_enough_points() {
        let mut w = work();
        w.feasible_points = 1;
        let one = FopPeModel::new(FlexConfig::flex().with_pes(1));
        let four = FopPeModel::new(FlexConfig::flex().with_pes(4));
        assert!(four.cluster_region_cycles(&w) >= one.cluster_region_cycles(&w));
    }

    #[test]
    fn full_flex_stack_is_fastest() {
        let w = work();
        let base = FopPeModel::new(FlexConfig::normal_pipeline_baseline());
        let full = FopPeModel::new(FlexConfig::flex());
        let a = base.cluster_region_cycles(&w);
        let b = full.cluster_region_cycles(&w);
        let speedup = a.count() as f64 / b.count() as f64;
        assert!(
            speedup > 3.0,
            "end-to-end FPGA-side speedup {speedup:.2} (paper: ~5-9x in Fig. 8)"
        );
    }
}
