//! End-to-end runtime estimation for the FLEX accelerator.
//!
//! The functional legalization runs on the host and produces (1) the real quality numbers,
//! (2) a software runtime breakdown (how long FOP took in software vs. everything else), and
//! (3) a per-region work trace. This module replays the trace through the FOP PE cluster model
//! and combines it with the CPU-side work and the link model:
//!
//! * under the FLEX assignment the CPU prepares regions / commits results while the FPGA
//!   computes FOP, so the two overlap and the total is governed by the slower of the two plus
//!   the transfers that could not be hidden;
//! * offloading step (e) as well (the Fig. 10 alternative) serializes the position write-back
//!   with the CPU bookkeeping and prevents that overlap.

use crate::config::{FlexConfig, TaskAssignment};
use crate::fop_pipeline::FopPeModel;
use crate::task_assign;
use flex_mgl::legalize::LegalizeResult;
use flex_mgl::stats::WorkTrace;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Breakdown of the software (host-only) legalization run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SoftwareBreakdown {
    /// Total wall-clock runtime of the software legalizer.
    pub total: Duration,
    /// Time spent inside FOP (the part FLEX offloads).
    pub fop: Duration,
    /// Everything else: pre-move, ordering, region extraction, insert & update.
    pub other: Duration,
    /// Host worker threads the run that produced this breakdown used. [`estimate`] models the
    /// CPU side at `FlexConfig::host_threads` relative to this, so a breakdown measured on a
    /// parallel host is not scaled a second time.
    pub measured_threads: usize,
}

impl SoftwareBreakdown {
    /// Extract the breakdown from a (serial) legalization result.
    pub fn from_result(result: &LegalizeResult) -> Self {
        Self::from_result_with_threads(result, 1)
    }

    /// Extract the breakdown from a run that used `threads` host workers.
    pub fn from_result_with_threads(result: &LegalizeResult, threads: usize) -> Self {
        let fop = Duration::from_nanos(result.op_stats.total_ns());
        let total = result.runtime;
        let other = total.saturating_sub(fop);
        Self {
            total,
            fop,
            other,
            measured_threads: threads.max(1),
        }
    }

    /// A synthetic breakdown pinned to FLEX's operating point — FOP dominates the software
    /// run (10×) and the CPU bookkeeping is comparable to the FPGA-side FOP time. This is the
    /// regime Fig. 10 measures; the task-assignment comparisons are deterministic under it,
    /// whereas wall-clock-measured breakdowns of tiny test cases are CPU-bound and noisy.
    pub fn pinned_to_fpga_time(fpga_time: Duration) -> Self {
        let fpga = fpga_time.max(Duration::from_micros(1));
        Self {
            total: fpga * 11,
            fop: fpga * 10,
            other: fpga,
            measured_threads: 1,
        }
    }
}

/// Estimated timing of a FLEX run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FlexTiming {
    /// CPU time (steps a, b, c and — under the FLEX assignment — e).
    pub cpu_time: Duration,
    /// FPGA time (FOP, plus insert & update when offloaded).
    pub fpga_time: Duration,
    /// Transfer time that could not be hidden behind computation.
    pub visible_transfer: Duration,
    /// Estimated end-to-end runtime of the accelerated legalization.
    pub total: Duration,
    /// Total FPGA cycles consumed by the FOP PE cluster.
    pub fpga_cycles: u64,
    /// Speedup over the software run the trace was recorded from.
    pub speedup_vs_software: f64,
}

use crate::task_assign::INSERT_UPDATE_SHARE;

/// Estimate the FLEX runtime for a recorded work trace.
pub fn estimate(
    config: &FlexConfig,
    trace: &WorkTrace,
    software: &SoftwareBreakdown,
) -> FlexTiming {
    if config.assignment == TaskAssignment::AllCpu {
        return FlexTiming {
            cpu_time: software.total,
            fpga_time: Duration::ZERO,
            visible_transfer: Duration::ZERO,
            total: software.total,
            fpga_cycles: 0,
            speedup_vs_software: 1.0,
        };
    }

    let pe = FopPeModel::new(config.clone());
    let mut fpga_cycles = 0u64;
    let mut visible_transfer = Duration::ZERO;
    for (idx, work) in trace.regions.iter().enumerate() {
        let mut cycles = pe.cluster_region_cycles(work);
        if config.assignment == TaskAssignment::FopAndUpdateOnFpga {
            // the committing shift of step (e) reruns the winning point's shifting on the FPGA
            cycles += pe.shift_cycles(work);
        }
        fpga_cycles += cycles.count();
        visible_transfer += task_assign::visible_transfer(
            config.assignment,
            &config.link,
            work,
            config.pingpong_preload,
            idx == 0,
        );
    }
    let fpga_time = config
        .pe_clock
        .to_duration(flex_fpga::clock::Cycles(fpga_cycles));

    // steps (a)–(c) overlap across region shards on the host: rescale the measured CPU-side
    // time from the thread count it was measured at to the configured one (Amdahl model in
    // task_assign; a breakdown already measured at `host_threads` is left untouched)
    let host_scale = task_assign::host_overlap_factor(config.host_threads)
        / task_assign::host_overlap_factor(software.measured_threads);
    let host_other = software.other.mul_f64(host_scale);

    let (cpu_time, total) = match config.assignment {
        TaskAssignment::FopOnFpga => {
            // CPU keeps steps a, b, c, e and overlaps with the FPGA
            let cpu = host_other;
            let busy = if cpu > fpga_time { cpu } else { fpga_time };
            (cpu, busy + visible_transfer)
        }
        TaskAssignment::FopAndUpdateOnFpga => {
            // the CPU loses step (e) but now has to wait for every region's write-back before it
            // can define the next region, so its remaining work serializes with the FPGA
            let cpu = host_other.mul_f64(1.0 - INSERT_UPDATE_SHARE);
            (cpu, cpu + fpga_time + visible_transfer)
        }
        TaskAssignment::AllCpu => unreachable!("handled above"),
    };

    let total_s = total.as_secs_f64().max(1e-12);
    FlexTiming {
        cpu_time,
        fpga_time,
        visible_transfer,
        total,
        fpga_cycles,
        speedup_vs_software: software.total.as_secs_f64() / total_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flex_mgl::stats::RegionWork;
    use flex_placement::cell::CellId;

    fn trace(n: usize) -> WorkTrace {
        WorkTrace {
            regions: (0..n)
                .map(|i| RegionWork {
                    target: CellId(i as u32),
                    insertion_points: 30,
                    feasible_points: 24,
                    breakpoints: 300,
                    subcell_visits: 500,
                    shift_passes: 48,
                    sorted_cells: 400,
                    bound_queries: 520,
                    tall_bound_queries: 40,
                    local_cells: 20,
                    segments: 9,
                    next_region_overlaps: i % 4 == 0,
                    ..RegionWork::default()
                })
                .collect(),
        }
    }

    fn sw() -> SoftwareBreakdown {
        SoftwareBreakdown {
            total: Duration::from_millis(1000),
            fop: Duration::from_millis(800),
            other: Duration::from_millis(200),
            measured_threads: 1,
        }
    }

    #[test]
    fn flex_assignment_overlaps_cpu_and_fpga() {
        let t = estimate(&FlexConfig::flex(), &trace(200), &sw());
        assert!(t.fpga_cycles > 0);
        assert!(t.total < sw().total, "FLEX should beat the software run");
        assert!(t.speedup_vs_software > 1.0);
        assert!(t.total >= t.fpga_time.min(t.cpu_time));
    }

    #[test]
    fn offloading_insert_update_is_slower_than_flex() {
        // Fig. 10's direction holds in FLEX's operating regime, where the CPU bookkeeping is
        // comparable to the FPGA-side FOP time (FOP dominates the software run). With a
        // CPU-bound breakdown the model would let any extra offload trivially "win", which is
        // not the scenario the figure measures, so pin `other` to the modeled FPGA time.
        let probe = estimate(&FlexConfig::flex(), &trace(200), &sw());
        let software = SoftwareBreakdown::pinned_to_fpga_time(probe.fpga_time);
        let flex = estimate(&FlexConfig::flex(), &trace(200), &software);
        let alt = estimate(
            &FlexConfig::flex().with_assignment(TaskAssignment::FopAndUpdateOnFpga),
            &trace(200),
            &software,
        );
        assert!(
            alt.total > flex.total,
            "keeping step (e) on the CPU must win (Fig. 10): flex {:?} vs alt {:?}",
            flex.total,
            alt.total
        );
        let ratio = alt.total.as_secs_f64() / flex.total.as_secs_f64();
        assert!(ratio > 1.05 && ratio < 2.5, "Fig. 10 ratio {ratio:.2}");
    }

    #[test]
    fn host_threads_shrink_the_modeled_cpu_side() {
        let one = estimate(&FlexConfig::flex(), &trace(200), &sw());
        let eight = estimate(&FlexConfig::flex().with_host_threads(8), &trace(200), &sw());
        assert!(
            eight.cpu_time < one.cpu_time,
            "8 host threads must shrink steps (a)-(c)"
        );
        assert!(eight.total <= one.total);
        // a breakdown already measured at 8 threads is not scaled again
        let measured8 = SoftwareBreakdown {
            measured_threads: 8,
            ..sw()
        };
        let same = estimate(
            &FlexConfig::flex().with_host_threads(8),
            &trace(200),
            &measured8,
        );
        assert_eq!(same.cpu_time, one.cpu_time);
    }

    #[test]
    fn all_cpu_reproduces_the_software_time() {
        let t = estimate(
            &FlexConfig::flex().with_assignment(TaskAssignment::AllCpu),
            &trace(50),
            &sw(),
        );
        assert_eq!(t.total, sw().total);
        assert_eq!(t.fpga_cycles, 0);
        assert!((t.speedup_vs_software - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disabling_the_preload_increases_visible_transfer() {
        let mut cfg = FlexConfig::flex();
        let with = estimate(&cfg, &trace(300), &sw());
        cfg.pingpong_preload = false;
        let without = estimate(&cfg, &trace(300), &sw());
        assert!(without.visible_transfer > with.visible_transfer);
        assert!(without.total >= with.total);
    }

    #[test]
    fn more_pes_reduce_fpga_time() {
        let one = estimate(&FlexConfig::flex().with_pes(1), &trace(100), &sw());
        let two = estimate(&FlexConfig::flex().with_pes(2), &trace(100), &sw());
        assert!(two.fpga_time < one.fpga_time);
        let speedup = one.fpga_cycles as f64 / two.fpga_cycles as f64;
        assert!((1.5..=2.0).contains(&speedup), "PE scaling {speedup:.2}");
    }
}
