//! FLEX accelerator configuration and ablation presets.

use flex_fpga::clock::ClockDomain;
use flex_fpga::link::LinkModel;
use flex_mgl::config::{MglConfig, OrderingStrategy, ShiftAlgorithm};
use serde::{Deserialize, Serialize};

/// Which legalization steps run on the FPGA (Sec. 3.1.1 / Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskAssignment {
    /// The FLEX assignment: steps (a), (b), (c), (e) on the CPU, step (d) — FOP — on the FPGA.
    FopOnFpga,
    /// The Fig. 10 alternative: steps (d) *and* (e) on the FPGA, which forces every updated cell
    /// position to travel back over the link.
    FopAndUpdateOnFpga,
    /// Everything on the CPU (the software baseline; no FPGA involved).
    AllCpu,
}

/// How the FOP operators are pipelined on the FPGA (Sec. 3.2 / Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PipelineMode {
    /// Normal pipeline: each operator finishes all items and parks results in RAM before the
    /// next operator starts.
    Normal,
    /// The multi-granularity pipeline: stream I/O inside the forward/backward traversals,
    /// coarse chaining between them.
    MultiGranularity,
}

/// The SACS architecture options of Sec. 4.3 (the Fig. 9 ablation steps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SacsArchConfig {
    /// `SACS-Ar`: the customized dataflow/architecture (pipelined PE, II ≈ 1 per cell) instead
    /// of a sequential evaluation of the dataflow stages.
    pub pipelined: bool,
    /// `SACS-ImpBW`: odd-even banking of LSC/CST, ping-pong initialization, the 2× memory clock
    /// domain and LCT duplication — the bandwidth package for multi-row-height cell access.
    pub improved_bandwidth: bool,
    /// `SACS-Paral`: run the left-move and right-move phases in parallel.
    pub parallel_phases: bool,
}

impl SacsArchConfig {
    /// Plain SACS algorithm mapped on the FPGA without the architecture optimizations.
    pub fn algorithm_only() -> Self {
        Self {
            pipelined: false,
            improved_bandwidth: false,
            parallel_phases: false,
        }
    }

    /// The full SACS architecture (all optimizations on).
    pub fn full() -> Self {
        Self {
            pipelined: true,
            improved_bandwidth: true,
            parallel_phases: true,
        }
    }
}

/// Configuration of the FLEX accelerator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlexConfig {
    /// Number of parallel FOP PEs (the paper evaluates 1 and 2; Table 2 shows both).
    pub num_fop_pes: u64,
    /// PE clock domain (285 MHz on the Alveo U50).
    pub pe_clock: ClockDomain,
    /// Whether cell shifting uses SACS or the original multi-pass algorithm on the FPGA.
    pub shift: ShiftAlgorithm,
    /// SACS architecture options (only meaningful when `shift == Sacs`).
    pub sacs: SacsArchConfig,
    /// FOP breakpoint pipeline organization.
    pub pipeline: PipelineMode,
    /// Task split between CPU and FPGA.
    pub assignment: TaskAssignment,
    /// Target-cell processing order used by the host part of the flow.
    pub ordering: OrderingStrategy,
    /// Whether the ping-pong preload of the next region is enabled (Sec. 3.1.2).
    pub pingpong_preload: bool,
    /// Host link model.
    pub link: LinkModel,
    /// Cycles charged for the cross-PE synchronization that merges two insertion-point results
    /// ("a simple synchronization operation … taking several clock cycles", Sec. 5.4).
    pub pe_sync_cycles: u64,
    /// Worker threads for the host-side steps (a)–(c): with more than one, the functional
    /// legalization runs on `flex_mgl::parallel::ParallelMglLegalizer`, overlapping region
    /// extraction and FOP across row shards while producing the exact serial placement.
    pub host_threads: usize,
    /// Epoch-pipelined batch speculation of the parallel host engine: speculate upcoming
    /// batches against epoch snapshots while earlier batches commit. Placement-neutral; only
    /// meaningful when `host_threads > 1`.
    pub host_pipelining: bool,
    /// Pipeline depth of the parallel host engine: the maximum number of in-flight epochs
    /// (up to `depth − 1` batches speculating while one commits). Only meaningful with
    /// `host_pipelining`; values below 2 are raised to 2 there. Placement-neutral.
    pub host_pipeline_depth: usize,
    /// Bound on the ECO service's request queue (`flex-eco-serve`): at most this many decoded
    /// client requests wait for the single resident engine before accept threads block.
    pub eco_queue_capacity: usize,
    /// Whether the ECO service validates `Design::validate_invariants` after every structural
    /// delta batch at the request boundary, turning a malformed client delta into a typed
    /// error instead of corrupted resident state.
    pub eco_validate_boundary: bool,
}

impl Default for FlexConfig {
    fn default() -> Self {
        Self {
            num_fop_pes: 2,
            pe_clock: ClockDomain::FLEX_PE,
            shift: ShiftAlgorithm::Sacs,
            sacs: SacsArchConfig::full(),
            pipeline: PipelineMode::MultiGranularity,
            assignment: TaskAssignment::FopOnFpga,
            ordering: OrderingStrategy::SlidingWindowDensity,
            pingpong_preload: true,
            link: LinkModel::default(),
            pe_sync_cycles: 6,
            host_threads: 1,
            host_pipelining: true,
            host_pipeline_depth: 2,
            eco_queue_capacity: 1024,
            eco_validate_boundary: true,
        }
    }
}

impl FlexConfig {
    /// The full FLEX configuration evaluated in Table 1 (2 FOP PEs, everything enabled).
    pub fn flex() -> Self {
        Self::default()
    }

    /// The Fig. 8 baseline: original shifting, normal pipeline, one PE.
    pub fn normal_pipeline_baseline() -> Self {
        Self {
            num_fop_pes: 1,
            shift: ShiftAlgorithm::Original,
            sacs: SacsArchConfig::algorithm_only(),
            pipeline: PipelineMode::Normal,
            ..Self::default()
        }
    }

    /// Fig. 8 step 2: add SACS (still a normal pipeline, one PE).
    pub fn with_sacs_only() -> Self {
        Self {
            num_fop_pes: 1,
            shift: ShiftAlgorithm::Sacs,
            sacs: SacsArchConfig::full(),
            pipeline: PipelineMode::Normal,
            ..Self::default()
        }
    }

    /// Fig. 8 step 3: SACS + multi-granularity pipeline, one PE.
    pub fn with_multi_granularity() -> Self {
        Self {
            num_fop_pes: 1,
            ..Self::default()
        }
    }

    /// Number of FOP PEs (builder style).
    pub fn with_pes(mut self, pes: u64) -> Self {
        self.num_fop_pes = pes.max(1);
        self
    }

    /// Set the task assignment (builder style).
    pub fn with_assignment(mut self, assignment: TaskAssignment) -> Self {
        self.assignment = assignment;
        self
    }

    /// Set the SACS architecture options (builder style).
    pub fn with_sacs_arch(mut self, sacs: SacsArchConfig) -> Self {
        self.sacs = sacs;
        self
    }

    /// Set the host-side worker-thread count (builder style). Values above one run the
    /// CPU-side steps (a)–(c) on the region-sharded parallel engine.
    pub fn with_host_threads(mut self, threads: usize) -> Self {
        self.host_threads = threads.max(1);
        self
    }

    /// Enable or disable the parallel host engine's batch pipelining (builder style).
    pub fn with_host_pipelining(mut self, pipelined: bool) -> Self {
        self.host_pipelining = pipelined;
        self
    }

    /// Set the parallel host engine's pipeline depth — the maximum number of in-flight
    /// epochs (builder style). Enables pipelining for depths above 1 and disables it for
    /// depth 1, mirroring the engine's semantics.
    pub fn with_host_pipeline_depth(mut self, depth: usize) -> Self {
        let depth = depth.max(1);
        self.host_pipeline_depth = depth.max(2);
        self.host_pipelining = depth > 1;
        self
    }

    /// Set the ECO service's request-queue capacity (builder style). Clamped to at least 1.
    pub fn with_eco_queue_capacity(mut self, capacity: usize) -> Self {
        self.eco_queue_capacity = capacity.max(1);
        self
    }

    /// Enable or disable boundary validation in the ECO service (builder style).
    pub fn with_eco_validation(mut self, validate: bool) -> Self {
        self.eco_validate_boundary = validate;
        self
    }

    /// Derive the `flex-mgl` configuration that matches this accelerator configuration (used to
    /// run the functional legalization on the host and collect the work trace).
    pub fn mgl_config(&self) -> MglConfig {
        MglConfig {
            shift: self.shift,
            fop: match self.pipeline {
                PipelineMode::Normal => flex_mgl::config::FopVariant::Original,
                PipelineMode::MultiGranularity => flex_mgl::config::FopVariant::Reorganized,
            },
            ordering: self.ordering,
            collect_trace: true,
            ..MglConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_full_flex() {
        let c = FlexConfig::default();
        assert_eq!(c.num_fop_pes, 2);
        assert_eq!(c.assignment, TaskAssignment::FopOnFpga);
        assert_eq!(c.pipeline, PipelineMode::MultiGranularity);
        assert!(c.sacs.pipelined && c.sacs.improved_bandwidth && c.sacs.parallel_phases);
    }

    #[test]
    fn ablation_presets_are_ordered() {
        let base = FlexConfig::normal_pipeline_baseline();
        assert_eq!(base.pipeline, PipelineMode::Normal);
        assert_eq!(base.shift, ShiftAlgorithm::Original);
        let sacs = FlexConfig::with_sacs_only();
        assert_eq!(sacs.shift, ShiftAlgorithm::Sacs);
        assert_eq!(sacs.pipeline, PipelineMode::Normal);
        let mg = FlexConfig::with_multi_granularity();
        assert_eq!(mg.pipeline, PipelineMode::MultiGranularity);
        assert_eq!(mg.num_fop_pes, 1);
        assert_eq!(FlexConfig::flex().num_fop_pes, 2);
    }

    #[test]
    fn mgl_config_reflects_accelerator_choices() {
        let cfg = FlexConfig::default().mgl_config();
        assert!(cfg.collect_trace);
        assert_eq!(cfg.shift, ShiftAlgorithm::Sacs);
        assert_eq!(cfg.fop, flex_mgl::config::FopVariant::Reorganized);
        let cfg2 = FlexConfig::normal_pipeline_baseline().mgl_config();
        assert_eq!(cfg2.fop, flex_mgl::config::FopVariant::Original);
    }

    #[test]
    fn builders() {
        let c = FlexConfig::default()
            .with_pes(3)
            .with_assignment(TaskAssignment::FopAndUpdateOnFpga)
            .with_sacs_arch(SacsArchConfig::algorithm_only());
        assert_eq!(c.num_fop_pes, 3);
        assert_eq!(c.assignment, TaskAssignment::FopAndUpdateOnFpga);
        assert!(!c.sacs.pipelined);
        assert_eq!(FlexConfig::default().with_pes(0).num_fop_pes, 1);
        let e = FlexConfig::default()
            .with_eco_queue_capacity(0)
            .with_eco_validation(false);
        assert_eq!(e.eco_queue_capacity, 1);
        assert!(!e.eco_validate_boundary);
        assert_eq!(FlexConfig::default().eco_queue_capacity, 1024);
        assert!(FlexConfig::default().eco_validate_boundary);
    }
}
