//! The DATE'22 CPU-GPU legalizer (reference \[30\]).
//!
//! The DATE'22 system parallelizes MGL on a GPU by processing batches of non-overlapping
//! localRegions: for every region in a batch, all single-row insertion intervals are evaluated
//! brute-force by parallel threads (no queue data structures exist on the GPU), then the device
//! synchronizes so the host can write the chosen positions back and form the next batch.
//! "Tough" cells — multi-row-height targets and any cell whose region evaluation fails on the
//! GPU — are deferred to a serial CPU queue. The paper's Challenge-1 is precisely this split:
//! the CPU ends up with the long-latency cells while the GPU finishes early, and the batched
//! processing deviates from the quality-critical processing order.
//!
//! The functional legalization below follows that structure on the host (large non-overlapping
//! batches, tough cells last), so its *quality* genuinely reflects the DATE'22 ordering; its
//! *runtime* is reported through the [`GpuModel`] (brute-force interval evaluation per batch
//! plus a synchronization per batch) combined with the measured serial time of the tough-cell
//! queue.

use crate::gpu_model::GpuModel;
use flex_mgl::api::{LegalizeReport, Legalizer, RuntimeBreakdown};
use flex_mgl::config::MglConfig;
use flex_mgl::fop::{self, TargetSpec};
use flex_mgl::legalize::{commit_placement, fallback_place};
use flex_mgl::region::{target_window, LocalRegion};
use flex_mgl::stats::FopOpStats;
use flex_placement::cell::CellId;
use flex_placement::geom::Rect;
use flex_placement::layout::Design;
use flex_placement::legality::check_legality_with;
use flex_placement::metrics::displacement_stats;
use flex_placement::segment::SegmentMap;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Result of a CPU-GPU legalization run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CpuGpuResult {
    /// Whether the final placement is legal.
    pub legal: bool,
    /// Measured host runtime of the functional run.
    pub host_runtime: Duration,
    /// Estimated end-to-end runtime on the modelled CPU+GTX1660Ti system.
    pub estimated_runtime: Duration,
    /// Estimated time the GPU spends in device synchronization.
    pub sync_time: Duration,
    /// Estimated time the CPU spends on the serial tough-cell queue.
    pub tough_cell_time: Duration,
    /// Average displacement `S_am`.
    pub average_displacement: f64,
    /// Number of GPU batches (synchronization points).
    pub batches: usize,
    /// Number of cells deferred to the CPU tough-cell queue.
    pub tough_cells: usize,
    /// Cells that could not be placed.
    pub failed: Vec<CellId>,
}

impl CpuGpuResult {
    /// Estimated runtime in seconds.
    pub fn seconds(&self) -> f64 {
        self.estimated_runtime.as_secs_f64()
    }

    /// Share of the GPU-side time spent in device synchronization (the Fig. 2(b) statistic).
    pub fn sync_fraction(&self) -> f64 {
        let gpu = self.estimated_runtime.saturating_sub(self.tough_cell_time);
        if gpu.is_zero() {
            return 0.0;
        }
        self.sync_time.as_secs_f64() / gpu.as_secs_f64()
    }
}

/// The CPU-GPU legalizer model.
#[derive(Debug, Clone)]
pub struct CpuGpuLegalizer {
    /// GPU device model.
    pub gpu: GpuModel,
    /// Maximum number of non-overlapping regions per GPU batch.
    pub batch_size: usize,
    /// Underlying MGL configuration.
    pub config: MglConfig,
    /// Relative speed of the simple host CPU handling the tough-cell queue (the DATE'22 host is
    /// a desktop-class i5; 1.0 means "as fast as this machine").
    pub cpu_speed: f64,
}

impl Default for CpuGpuLegalizer {
    fn default() -> Self {
        Self {
            gpu: GpuModel::gtx_1660_ti(),
            batch_size: 192,
            config: MglConfig::original(),
            cpu_speed: 0.8,
        }
    }
}

impl CpuGpuLegalizer {
    /// Legalize the design in place.
    pub fn legalize(&self, design: &mut Design) -> CpuGpuResult {
        let start = Instant::now();
        design.pre_move();
        let segmap = SegmentMap::build(design);
        let mut op_stats = FopOpStats::default();

        // size-descending order; multi-row cells are "tough" and land on the CPU queue
        let mut simple: Vec<CellId> = Vec::new();
        let mut tough: Vec<CellId> = Vec::new();
        let mut order: Vec<CellId> = design.movable_ids();
        order.sort_by_key(|&id| {
            let c = design.cell(id);
            (std::cmp::Reverse(c.area()), id)
        });
        for id in order {
            if design.cell(id).height > 1 {
                tough.push(id);
            } else {
                simple.push(id);
            }
        }
        let tough_count = tough.len();

        let mut batches = 0usize;
        let mut gpu_time = Duration::ZERO;
        let mut sync_time = Duration::ZERO;
        let mut failed = Vec::new();

        // --- GPU part: batches of non-overlapping single-row regions --------------------------
        let mut pending: VecDeque<CellId> = simple.into();
        while !pending.is_empty() {
            let mut batch: Vec<CellId> = Vec::new();
            let mut windows: Vec<Rect> = Vec::new();
            let mut skipped: Vec<CellId> = Vec::new();
            let lookahead = self.batch_size * 4;
            while batch.len() < self.batch_size && !pending.is_empty() && skipped.len() < lookahead
            {
                let id = pending.pop_front().unwrap();
                let w = target_window(
                    design,
                    id,
                    self.config.window_half_sites,
                    self.config.window_half_rows,
                );
                if windows.iter().any(|x| x.overlaps(&w)) {
                    skipped.push(id);
                } else {
                    windows.push(w);
                    batch.push(id);
                }
            }
            for id in skipped.into_iter().rev() {
                pending.push_front(id);
            }
            if batch.is_empty() {
                if let Some(id) = pending.pop_front() {
                    batch.push(id);
                }
            }
            batches += 1;

            // brute-force work per region: every site of every row of the window is a candidate
            // interval evaluated by one GPU thread
            let mut items_per_region = 0u64;
            for id in &batch {
                let w = target_window(
                    design,
                    *id,
                    self.config.window_half_sites,
                    self.config.window_half_rows,
                );
                items_per_region = items_per_region.max((w.width() * w.height()) as u64);
            }
            let batch_time = self.gpu.batch_time(batch.len() as u64, items_per_region);
            gpu_time += batch_time;
            sync_time += self.gpu.sync_overhead;

            // functional evaluation + commit on the host
            for id in batch {
                if !self.place_one(design, &segmap, id, &mut op_stats) {
                    failed.push(id);
                }
            }
        }

        // --- CPU part: the serial tough-cell queue --------------------------------------------
        let tough_start = Instant::now();
        for id in tough {
            if !self.place_one(design, &segmap, id, &mut op_stats) {
                failed.push(id);
            }
        }
        let tough_cell_time =
            Duration::from_secs_f64(tough_start.elapsed().as_secs_f64() / self.cpu_speed);

        let disp = displacement_stats(design);
        let estimated_runtime = gpu_time + tough_cell_time;
        CpuGpuResult {
            legal: check_legality_with(design, true).is_legal() && failed.is_empty(),
            host_runtime: start.elapsed(),
            estimated_runtime,
            sync_time,
            tough_cell_time,
            average_displacement: disp.average,
            batches,
            tough_cells: tough_count,
            failed,
        }
    }

    /// Place one cell with expanding-window FOP, falling back to the nearest-gap scan.
    fn place_one(
        &self,
        design: &mut Design,
        segmap: &SegmentMap,
        id: CellId,
        op_stats: &mut FopOpStats,
    ) -> bool {
        let (width, height, gx, gy, parity) = {
            let c = design.cell(id);
            (c.width, c.height, c.gx, c.gy, c.row_parity)
        };
        let spec = TargetSpec {
            width,
            height,
            gx,
            gy,
            parity,
        };
        for expansion in 0..=self.config.max_window_expansions {
            let window = target_window(
                design,
                id,
                self.config.window_half_sites << expansion,
                self.config.window_half_rows << expansion,
            );
            let region = LocalRegion::extract(design, segmap, id, window);
            if !region.can_host(width, height, parity) {
                continue;
            }
            let out = fop::find_optimal_position(&region, &spec, &self.config, op_stats);
            if let Some(best) = out.best {
                if commit_placement(design, &region, &best, &spec, &self.config) {
                    return true;
                }
            }
        }
        fallback_place(design, id, &spec)
    }
}

impl Legalizer for CpuGpuLegalizer {
    fn name(&self) -> &'static str {
        "date22-cpu-gpu"
    }

    fn legalize(&self, design: &mut Design) -> LegalizeReport {
        let result = CpuGpuLegalizer::legalize(self, design);
        // the DATE'22 flow does not distinguish region commits from its internal fallback,
        // so every placed cell is reported as a region placement (see `with_counts`)
        let cells = design.num_movable();
        LegalizeReport::new(self.name(), result.legal, cells, design)
            .with_runtime(RuntimeBreakdown::modeled(
                result.host_runtime,
                result.estimated_runtime,
            ))
            .with_counts(
                cells.saturating_sub(result.failed.len()),
                0,
                result.failed.clone(),
            )
            .with_details(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flex_placement::benchmark::{generate, BenchmarkSpec};

    #[test]
    fn cpu_gpu_legalizer_produces_legal_result() {
        let mut d = generate(&BenchmarkSpec::tiny("dategpu", 41));
        let res = CpuGpuLegalizer::default().legalize(&mut d);
        assert!(res.legal, "failed: {:?}", res.failed);
        assert!(res.batches > 0);
        assert!(
            res.tough_cells > 0,
            "the tiny benchmark contains multi-row cells"
        );
        assert!(res.estimated_runtime > Duration::ZERO);
    }

    #[test]
    fn sync_overhead_is_a_substantial_share() {
        // Fig. 2(b): the DATE'22 legalizer spends a large fraction of its time in device
        // synchronization on region-parallel batches
        let mut d = generate(&BenchmarkSpec::medium("dategpu-sync", 42).scaled(0.4));
        let res = CpuGpuLegalizer::default().legalize(&mut d);
        assert!(res.legal);
        let f = res.sync_fraction();
        assert!(f > 0.05, "sync fraction {f:.3} unexpectedly small");
        assert!(f < 0.9, "sync fraction {f:.3} unexpectedly large");
    }

    #[test]
    fn tough_cells_serialize_on_the_cpu() {
        let spec = BenchmarkSpec::tiny("dategpu-tough", 43).with_height_mix(vec![
            (1, 0.5),
            (2, 0.3),
            (3, 0.15),
            (4, 0.05),
        ]);
        let mut d = generate(&spec);
        let res = CpuGpuLegalizer::default().legalize(&mut d);
        assert!(res.legal);
        assert!(res.tough_cell_time > Duration::ZERO);
        assert!(res.tough_cells as f64 > 0.3 * d.num_movable() as f64);
    }
}
