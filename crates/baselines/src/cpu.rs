//! The single-threaded and multi-threaded CPU MGL legalizer (TCAD'22 \[18\]).
//!
//! The multi-threaded variant reproduces the region-level parallelization the paper's Fig. 2(a)
//! analyses: the size-ordered queue of target cells is scanned for a batch of cells whose
//! legalization windows do not overlap, the batch's FOP computations run in parallel worker
//! threads, and the commits are applied under a barrier before the next batch is formed. Batch
//! formation and committing are inherently serial, and the number of non-overlapping regions
//! available at any moment is limited, which is why the speedup saturates around eight threads.

use flex_mgl::api::{LegalizeReport, Legalizer, RuntimeBreakdown};
use flex_mgl::config::MglConfig;
use flex_mgl::fop::{self, Placement, TargetSpec};
use flex_mgl::legalize::{commit_placement, fallback_place_indexed};
use flex_mgl::region::{target_window, LegalizedIndex, LocalRegion};
use flex_mgl::stats::FopOpStats;
use flex_placement::cell::CellId;
use flex_placement::geom::Rect;
use flex_placement::layout::Design;
use flex_placement::legality::check_legality_with;
use flex_placement::metrics::displacement_stats;
use flex_placement::segment::SegmentMap;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// A batch member's FOP outcome: the extracted region, chosen placement and target spec, or
/// `None` when no window produced a feasible point.
type BatchOutcome = (CellId, Option<(LocalRegion, Placement, TargetSpec)>);

/// Result of a CPU-baseline legalization run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CpuLegalizerResult {
    /// Whether the final placement is fully legal.
    pub legal: bool,
    /// Wall-clock runtime.
    pub runtime: Duration,
    /// Average displacement `S_am`.
    pub average_displacement: f64,
    /// Maximum cell displacement.
    pub max_displacement: f64,
    /// Cells committed through FOP.
    pub placed_in_region: usize,
    /// Cells placed by the fallback scan.
    pub fallback_placed: usize,
    /// Cells that could not be placed.
    pub failed: Vec<CellId>,
    /// Number of parallel batches (synchronization points) executed.
    pub batches: usize,
    /// Average number of regions processed per batch.
    pub avg_batch_size: f64,
}

impl CpuLegalizerResult {
    /// Runtime in seconds.
    pub fn seconds(&self) -> f64 {
        self.runtime.as_secs_f64()
    }
}

/// The multi-threaded CPU MGL legalizer.
#[derive(Debug, Clone)]
pub struct CpuLegalizer {
    /// Number of worker threads (1 = the sequential TCAD'22 flow).
    pub threads: usize,
    /// Underlying MGL configuration (defaults to the original algorithm variants).
    pub config: MglConfig,
}

impl CpuLegalizer {
    /// Create a legalizer with `threads` worker threads and the original MGL configuration.
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            config: MglConfig::original(),
        }
    }

    /// Override the MGL configuration.
    pub fn with_config(mut self, config: MglConfig) -> Self {
        self.config = config;
        self
    }

    /// Legalize the design in place.
    pub fn legalize(&self, design: &mut Design) -> CpuLegalizerResult {
        let start = Instant::now();
        design.pre_move();
        let segmap = SegmentMap::build(design);
        // row-bucketed obstacle index: extraction and fallback only look at the legalized
        // cells actually occupying the window's rows instead of scanning the whole design,
        // which keeps the baseline honest (O(cells-in-window) per region) at 50k cells
        let mut index = LegalizedIndex::build(design);
        let mut op_stats = FopOpStats::default();

        // size-descending processing order (the widely adopted baseline ordering)
        let mut queue: Vec<CellId> = design.movable_ids();
        queue.sort_by_key(|&id| {
            let c = design.cell(id);
            (std::cmp::Reverse(c.area()), id)
        });

        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(self.threads)
            .build()
            .expect("failed to build worker pool");

        let mut placed_in_region = 0usize;
        let mut fallback_placed = 0usize;
        let mut failed = Vec::new();
        let mut batches = 0usize;
        let mut batch_total = 0usize;

        let mut pending = std::collections::VecDeque::from(queue);
        while !pending.is_empty() {
            // form a batch of cells whose windows do not overlap (scanning a bounded lookahead
            // so the ordering does not degrade arbitrarily)
            let lookahead = (self.threads * 4).max(8);
            let mut batch: Vec<CellId> = Vec::with_capacity(self.threads);
            let mut batch_windows: Vec<Rect> = Vec::new();
            let mut skipped: Vec<CellId> = Vec::new();
            while batch.len() < self.threads && !pending.is_empty() && skipped.len() < lookahead {
                let id = pending.pop_front().unwrap();
                let window = target_window(
                    design,
                    id,
                    self.config.window_half_sites,
                    self.config.window_half_rows,
                );
                if batch_windows.iter().any(|w| w.overlaps(&window)) {
                    skipped.push(id);
                } else {
                    batch_windows.push(window);
                    batch.push(id);
                }
            }
            // anything skipped goes back to the front, preserving order
            for id in skipped.into_iter().rev() {
                pending.push_front(id);
            }
            if batch.is_empty() {
                // nothing non-overlapping found within the lookahead: fall back to one cell
                if let Some(id) = pending.pop_front() {
                    batch.push(id);
                }
            }

            batches += 1;
            batch_total += batch.len();

            // parallel FOP over the batch (read-only view of the design and the index)
            let cfg = &self.config;
            let design_ref: &Design = design;
            let segmap_ref = &segmap;
            let index_ref = &index;
            let outcomes: Vec<BatchOutcome> = pool.install(|| {
                batch
                    .par_iter()
                    .map(|&id| {
                        let c = design_ref.cell(id);
                        let spec = TargetSpec {
                            width: c.width,
                            height: c.height,
                            gx: c.gx,
                            gy: c.gy,
                            parity: c.row_parity,
                        };
                        let mut local_stats = FopOpStats::default();
                        for expansion in 0..=cfg.max_window_expansions {
                            let window = target_window(
                                design_ref,
                                id,
                                cfg.window_half_sites << expansion,
                                cfg.window_half_rows << expansion,
                            );
                            let region = LocalRegion::extract_indexed(
                                design_ref, segmap_ref, id, window, index_ref,
                            );
                            if region.cells.len() > cfg.max_region_cells {
                                // larger windows only grow the region: give up on FOP for
                                // this cell and let the fallback scan place it
                                break;
                            }
                            if !region.can_host(spec.width, spec.height, spec.parity) {
                                continue;
                            }
                            let out =
                                fop::find_optimal_position(&region, &spec, cfg, &mut local_stats);
                            if let Some(best) = out.best {
                                return (id, Some((region, best, spec)));
                            }
                        }
                        (id, None)
                    })
                    .collect()
            });

            // serial commit phase (the synchronization the paper's Fig. 2(a)/(b) refers to)
            for (id, outcome) in outcomes {
                match outcome {
                    Some((region, placement, spec)) => {
                        if commit_placement(design, &region, &placement, &spec, cfg) {
                            placed_in_region += 1;
                            index.insert(design, id);
                        } else if fallback_place_indexed(design, &index, id, &spec) {
                            fallback_placed += 1;
                            index.insert(design, id);
                        } else {
                            failed.push(id);
                        }
                    }
                    None => {
                        let c = design.cell(id);
                        let spec = TargetSpec {
                            width: c.width,
                            height: c.height,
                            gx: c.gx,
                            gy: c.gy,
                            parity: c.row_parity,
                        };
                        if fallback_place_indexed(design, &index, id, &spec) {
                            fallback_placed += 1;
                            index.insert(design, id);
                        } else {
                            failed.push(id);
                        }
                    }
                }
            }
        }

        let _ = &mut op_stats;
        let disp = displacement_stats(design);
        CpuLegalizerResult {
            legal: check_legality_with(design, true).is_legal(),
            runtime: start.elapsed(),
            average_displacement: disp.average,
            max_displacement: disp.max,
            placed_in_region,
            fallback_placed,
            failed,
            batches,
            avg_batch_size: if batches == 0 {
                0.0
            } else {
                batch_total as f64 / batches as f64
            },
        }
    }
}

impl Legalizer for CpuLegalizer {
    fn name(&self) -> &'static str {
        "tcad22-cpu"
    }

    fn legalize(&self, design: &mut Design) -> LegalizeReport {
        let result = CpuLegalizer::legalize(self, design);
        LegalizeReport::new(self.name(), result.legal, design.num_movable(), design)
            .with_runtime(RuntimeBreakdown::measured(result.runtime))
            .with_counts(
                result.placed_in_region,
                result.fallback_placed,
                result.failed.clone(),
            )
            .with_details(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flex_placement::benchmark::{generate, BenchmarkSpec};

    #[test]
    fn single_threaded_run_is_legal() {
        let mut d = generate(&BenchmarkSpec::tiny("cpu1", 21));
        let res = CpuLegalizer::new(1).legalize(&mut d);
        assert!(res.legal, "failed cells: {:?}", res.failed);
        assert_eq!(res.placed_in_region + res.fallback_placed, d.num_movable());
        assert!(res.avg_batch_size >= 1.0);
    }

    #[test]
    fn multi_threaded_run_is_legal_and_batches_regions() {
        let mut d = generate(&BenchmarkSpec::tiny("cpu8", 22));
        let res = CpuLegalizer::new(8).legalize(&mut d);
        assert!(res.legal, "failed cells: {:?}", res.failed);
        assert!(res.batches > 0);
        assert!(
            res.avg_batch_size > 1.0,
            "8 threads should batch more than one region"
        );
    }

    #[test]
    fn quality_is_close_between_thread_counts() {
        let mut d1 = generate(&BenchmarkSpec::tiny("cpuq", 23));
        let mut d2 = generate(&BenchmarkSpec::tiny("cpuq", 23));
        let a = CpuLegalizer::new(1).legalize(&mut d1);
        let b = CpuLegalizer::new(4).legalize(&mut d2);
        assert!(a.legal && b.legal);
        let ratio = b.average_displacement / a.average_displacement.max(1e-9);
        assert!(
            ratio < 1.25,
            "parallel batching degraded quality too much: {ratio:.3}"
        );
    }
}
