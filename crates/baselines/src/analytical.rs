//! An ISPD'25 LEGALM-style purely analytical legalizer (reference \[25\]).
//!
//! LEGALM formulates mixed-cell-height legalization as a quadratic program solved with a
//! linearized augmented-Lagrangian method on a GPU. This reproduction keeps the analytical
//! character — iterative quadratic row relaxation instead of greedy insertion-point search —
//! while staying tractable:
//!
//! 1. multi-row cells are committed first, each to the feasible position nearest its
//!    global-placement location (they are the coupling constraints of the QP; fixing them
//!    linearizes the rest),
//! 2. single-row cells are assigned to their nearest parity-legal row and every row segment is
//!    relaxed with the exact Abacus quadratic clustering,
//! 3. a few smoothing sweeps re-run the relaxation with anchors blended toward the previous
//!    solution (the "linearized" update of the augmented Lagrangian), re-assigning cells that
//!    ended up far from their row to a neighbouring row when that lowers their displacement,
//! 4. anything that still does not fit falls back to the nearest free location.
//!
//! The runtime is reported both as measured host time and as a GPU estimate (rows relax in
//! parallel on an A800-class device), which is what Table 1's ISPD'25 column is compared on.

use crate::abacus::{AbacusCell, AbacusRow};
use crate::gpu_model::GpuModel;
use flex_mgl::api::{LegalizeReport, Legalizer, RuntimeBreakdown};
use flex_mgl::fop::TargetSpec;
use flex_mgl::legalize::fallback_place;
use flex_placement::cell::CellId;
use flex_placement::geom::Interval;
use flex_placement::layout::Design;
use flex_placement::legality::check_legality_with;
use flex_placement::metrics::displacement_stats;
use flex_placement::segment::SegmentMap;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Result of the analytical legalizer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalyticalResult {
    /// Whether the final placement is legal.
    pub legal: bool,
    /// Measured host runtime.
    pub runtime: Duration,
    /// Estimated runtime on the A800-class GPU the paper's baseline uses.
    pub estimated_gpu_runtime: Duration,
    /// Average displacement `S_am`.
    pub average_displacement: f64,
    /// Cells that needed the fallback.
    pub fallback_placed: usize,
    /// Cells that could not be placed.
    pub failed: Vec<CellId>,
    /// Relaxation sweeps executed.
    pub iterations: usize,
}

/// The analytical legalizer.
#[derive(Debug, Clone)]
pub struct AnalyticalLegalizer {
    /// Number of relaxation sweeps.
    pub iterations: usize,
    /// GPU used for the runtime estimate.
    pub gpu: GpuModel,
}

impl Default for AnalyticalLegalizer {
    fn default() -> Self {
        Self {
            iterations: 3,
            gpu: GpuModel::a800(),
        }
    }
}

impl AnalyticalLegalizer {
    /// Create a legalizer with a given number of relaxation sweeps.
    pub fn new(iterations: usize) -> Self {
        Self {
            iterations: iterations.max(1),
            ..Self::default()
        }
    }

    /// Legalize the design in place.
    pub fn legalize(&self, design: &mut Design) -> AnalyticalResult {
        let start = Instant::now();
        design.pre_move();
        let segmap = SegmentMap::build(design);

        let mut fallback_placed = 0usize;
        let mut failed = Vec::new();
        let mut gpu_batches: Vec<(u64, u64)> = Vec::new(); // (parallel rows, items per row)

        // 1. commit multi-row cells first, nearest feasible position
        let mut multi: Vec<CellId> = design
            .cells
            .iter()
            .filter(|c| !c.fixed && c.height > 1)
            .map(|c| c.id)
            .collect();
        multi.sort_by_key(|&id| {
            let c = design.cell(id);
            (std::cmp::Reverse(c.area()), id)
        });
        for id in multi {
            let c = design.cell(id);
            let spec = TargetSpec {
                width: c.width,
                height: c.height,
                gx: c.gx,
                gy: c.gy,
                parity: c.row_parity,
            };
            if fallback_place(design, id, &spec) {
                fallback_placed += 1;
            } else {
                failed.push(id);
            }
        }

        // 2./3. iterative per-row quadratic relaxation of the single-row cells
        let singles: Vec<CellId> = design
            .cells
            .iter()
            .filter(|c| !c.fixed && c.height == 1)
            .map(|c| c.id)
            .collect();
        let mut anchor: HashMap<CellId, f64> =
            singles.iter().map(|&id| (id, design.cell(id).gx)).collect();

        let mut iterations_run = 0usize;
        for sweep in 0..self.iterations {
            iterations_run += 1;
            // assign every single-row cell to its current row (pre-move already chose the
            // nearest row; later sweeps may move cells whose segment overflowed)
            let mut per_segment: HashMap<(i64, i64), Vec<AbacusCell>> = HashMap::new();
            let mut seg_span: HashMap<(i64, i64), Interval> = HashMap::new();
            let mut unassigned: Vec<CellId> = Vec::new();
            for &id in &singles {
                let c = design.cell(id);
                let row = c.y;
                // the free segment of this row once multi-row/fixed obstacles are carved out
                let span = segment_for(design, &segmap, row, c.x);
                match span {
                    Some(span) => {
                        let key = (row, span.lo);
                        seg_span.insert(key, span);
                        per_segment.entry(key).or_default().push(AbacusCell {
                            id: id.index(),
                            desired_x: anchor[&id],
                            width: c.width,
                            weight: c.area() as f64,
                        });
                    }
                    None => unassigned.push(id),
                }
            }

            let mut max_items = 0u64;
            for (key, cells) in &per_segment {
                let span = seg_span[key];
                max_items = max_items.max(cells.len() as u64);
                let row_solver = AbacusRow::new(span);
                match row_solver.place(cells) {
                    Some(placed) => {
                        for (cell_idx, x) in placed {
                            let id = CellId(cell_idx as u32);
                            design.cell_mut(id).x = x;
                            design.cell_mut(id).legalized = true;
                        }
                    }
                    None => {
                        // segment overflow: evict the cells farthest from their anchors to a
                        // neighbouring row on the next sweep (here: mark them unassigned)
                        let mut cells = cells.clone();
                        // total_cmp: NaN anchors from a degenerate solve must not panic
                        cells.sort_by(|a, b| a.desired_x.total_cmp(&b.desired_x));
                        let keep = (span.len()
                            / cells.iter().map(|c| c.width).max().unwrap_or(1).max(1))
                            as usize;
                        for c in cells.iter().skip(keep.max(1)) {
                            unassigned.push(CellId(c.id as u32));
                        }
                        let kept: Vec<AbacusCell> = cells.into_iter().take(keep.max(1)).collect();
                        if let Some(placed) = row_solver.place(&kept) {
                            for (cell_idx, x) in placed {
                                let id = CellId(cell_idx as u32);
                                design.cell_mut(id).x = x;
                                design.cell_mut(id).legalized = true;
                            }
                        } else {
                            for c in &kept {
                                unassigned.push(CellId(c.id as u32));
                            }
                        }
                    }
                }
            }
            gpu_batches.push((per_segment.len() as u64, max_items * max_items));

            // move evicted cells to the best neighbouring row for the next sweep
            for id in unassigned {
                let (gy, height) = {
                    let c = design.cell(id);
                    (c.gy, c.height)
                };
                let cur = design.cell(id).y;
                let candidates = [cur - 1, cur + 1, cur - 2, cur + 2];
                let mut best = cur;
                let mut best_cost = f64::INFINITY;
                for cand in candidates {
                    if cand < 0 || cand + height > design.num_rows {
                        continue;
                    }
                    if !design.cell(id).parity_ok(cand) {
                        continue;
                    }
                    let cost = (cand as f64 - gy).abs();
                    if cost < best_cost {
                        best_cost = cost;
                        best = cand;
                    }
                }
                design.cell_mut(id).y = best;
                design.cell_mut(id).legalized = false;
            }

            // linearized update: blend the anchors toward the current solution
            let blend = 0.5 / (sweep as f64 + 1.0);
            for &id in &singles {
                let c = design.cell(id);
                let e = anchor.get_mut(&id).expect("anchor exists");
                *e = c.gx * (1.0 - blend) + c.x as f64 * blend;
            }
        }

        // 4. anything still illegal gets the fallback treatment
        let ids: Vec<CellId> = design
            .cells
            .iter()
            .filter(|c| !c.fixed && !c.legalized)
            .map(|c| c.id)
            .collect();
        for id in ids {
            let c = design.cell(id);
            let spec = TargetSpec {
                width: c.width,
                height: c.height,
                gx: c.gx,
                gy: c.gy,
                parity: c.row_parity,
            };
            if fallback_place(design, id, &spec) {
                fallback_placed += 1;
            } else {
                failed.push(id);
            }
        }
        // a final overlap sweep: if the relaxation left any overlap (it should not), push the
        // offending cells through the fallback as well
        let mut report = check_legality_with(design, true);
        let mut guard = 0;
        while !report.is_legal() && guard < 3 {
            guard += 1;
            let mut offenders: Vec<CellId> = Vec::new();
            for v in &report.violations {
                match v {
                    flex_placement::legality::Violation::CellOverlap { b, .. } => {
                        offenders.push(*b)
                    }
                    flex_placement::legality::Violation::BlockageOverlap { cell, .. }
                    | flex_placement::legality::Violation::OutOfDie { cell }
                    | flex_placement::legality::Violation::ParityViolation { cell, .. }
                    | flex_placement::legality::Violation::NotLegalized { cell } => {
                        offenders.push(*cell)
                    }
                }
            }
            offenders.sort();
            offenders.dedup();
            for id in offenders {
                if design.cell(id).fixed {
                    continue;
                }
                design.cell_mut(id).legalized = false;
                let c = design.cell(id);
                let spec = TargetSpec {
                    width: c.width,
                    height: c.height,
                    gx: c.gx,
                    gy: c.gy,
                    parity: c.row_parity,
                };
                if fallback_place(design, id, &spec) {
                    fallback_placed += 1;
                } else if !failed.contains(&id) {
                    failed.push(id);
                }
            }
            report = check_legality_with(design, true);
        }

        // GPU estimate: each sweep relaxes all row segments in parallel
        let mut gpu_time = Duration::ZERO;
        for (rows, items) in gpu_batches {
            gpu_time += self.gpu.batch_time(rows, items.max(64));
        }
        // plus the serial multi-row pre-pass, which the GPU cannot parallelize well
        gpu_time += Duration::from_secs_f64(start.elapsed().as_secs_f64() * 0.1);

        let disp = displacement_stats(design);
        AnalyticalResult {
            legal: report.is_legal(),
            runtime: start.elapsed(),
            estimated_gpu_runtime: gpu_time,
            average_displacement: disp.average,
            fallback_placed,
            failed,
            iterations: iterations_run,
        }
    }
}

impl Legalizer for AnalyticalLegalizer {
    fn name(&self) -> &'static str {
        "ispd25-analytical"
    }

    fn legalize(&self, design: &mut Design) -> LegalizeReport {
        let result = AnalyticalLegalizer::legalize(self, design);
        // "in region" here means "placed by the row relaxation"; the overlap-guard retry loop
        // can re-run the fallback on a cell it already counted, which is exactly the case the
        // `with_counts` clamp re-balances
        LegalizeReport::new(self.name(), result.legal, design.num_movable(), design)
            .with_runtime(RuntimeBreakdown::modeled(
                result.runtime,
                result.estimated_gpu_runtime,
            ))
            .with_counts(
                design
                    .num_movable()
                    .saturating_sub(result.fallback_placed + result.failed.len()),
                result.fallback_placed,
                result.failed.clone(),
            )
            .with_details(result)
    }
}

/// The free interval of `row` that contains (or is nearest to) `x`, with fixed cells, blockages
/// and already-legalized multi-row cells carved out.
fn segment_for(design: &Design, segmap: &SegmentMap, row: i64, x: i64) -> Option<Interval> {
    let mut pieces: Vec<Interval> = segmap.row(row).iter().map(|s| s.span).collect();
    for c in design
        .cells
        .iter()
        .filter(|c| !c.fixed && c.legalized && c.height > 1)
    {
        if c.y_interval().contains(row) {
            let span = c.x_interval();
            let mut next = Vec::with_capacity(pieces.len() + 1);
            for p in pieces {
                next.extend(p.subtract(&span));
            }
            pieces = next;
        }
    }
    pieces
        .into_iter()
        .filter(|p| !p.is_empty())
        .min_by_key(|p| {
            if p.contains(x) {
                0
            } else {
                (p.lo - x).abs().min((p.hi - x).abs())
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flex_placement::benchmark::{generate, BenchmarkSpec};

    #[test]
    fn analytical_legalizer_produces_legal_result() {
        let mut d = generate(&BenchmarkSpec::tiny("ana", 31));
        let res = AnalyticalLegalizer::default().legalize(&mut d);
        assert!(res.legal, "failed: {:?}", res.failed);
        assert!(res.average_displacement > 0.0);
        assert!(res.iterations >= 1);
        assert!(res.estimated_gpu_runtime > Duration::ZERO);
    }

    #[test]
    fn more_iterations_do_not_break_legality() {
        let mut d = generate(&BenchmarkSpec::tiny("ana-it", 32));
        let res = AnalyticalLegalizer::new(6).legalize(&mut d);
        assert!(res.legal);
        assert_eq!(res.iterations, 6);
    }

    #[test]
    fn handles_single_height_only_designs() {
        let spec = BenchmarkSpec::tiny("ana-flat", 33).with_height_mix(vec![(1, 1.0)]);
        let mut d = generate(&spec);
        let res = AnalyticalLegalizer::default().legalize(&mut d);
        assert!(res.legal);
    }

    #[test]
    fn quality_is_in_the_same_ballpark_as_mgl() {
        let mut d1 = generate(&BenchmarkSpec::tiny("ana-q", 34));
        let mut d2 = generate(&BenchmarkSpec::tiny("ana-q", 34));
        let ana = AnalyticalLegalizer::default().legalize(&mut d1);
        let mgl = flex_mgl::MglLegalizer::new(flex_mgl::MglConfig::original()).legalize(&mut d2);
        assert!(ana.legal && mgl.legal);
        let ratio = ana.average_displacement / mgl.average_displacement.max(1e-9);
        assert!(ratio < 3.0, "analytical quality ratio vs MGL: {ratio:.2}");
    }
}
