//! # flex-baselines — the legalizers FLEX is compared against
//!
//! Table 1 of the paper compares FLEX with three systems; all of them are re-implemented here,
//! on top of the same layout substrate and (where applicable) the same MGL algorithm, so that
//! the comparison exercises the *algorithms*, not incidental implementation differences:
//!
//! * [`cpu`] — the single-threaded and multi-threaded CPU MGL legalizer (TCAD'22 \[18\] in the
//!   paper's references). The multi-threaded variant processes batches of non-overlapping
//!   localRegions in parallel, which is exactly the region-level parallelism whose saturation
//!   at ~8 threads Fig. 2(a) reports.
//! * [`cpu_gpu`] — the DATE'22 CPU-GPU legalizer \[30\]: brute-force parallel evaluation of
//!   single-row intervals on the GPU, tough (multi-row / failing) cells pushed to a CPU queue,
//!   with an explicit device-synchronization cost per batch (Fig. 2(b)/(c)).
//! * [`analytical`] — an ISPD'25 LEGALM-style purely analytical legalizer \[25\]: iterative
//!   row-assignment plus Abacus-style quadratic clustering per row under a multi-row consistency
//!   penalty, with a GPU throughput model.
//! * [`abacus`] — the classic single-row Abacus legalizer \[27\], used by the analytical baseline
//!   and as a reference for single-height designs.
//! * [`gpu_model`] — a simple GPU execution model (CUDA cores, kernel launch and synchronization
//!   overheads) shared by the GPU-based baselines.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod abacus;
pub mod analytical;
pub mod cpu;
pub mod cpu_gpu;
pub mod gpu_model;

pub use abacus::AbacusRow;
pub use analytical::{AnalyticalLegalizer, AnalyticalResult};
pub use cpu::{CpuLegalizer, CpuLegalizerResult};
pub use cpu_gpu::{CpuGpuLegalizer, CpuGpuResult};
pub use gpu_model::GpuModel;
