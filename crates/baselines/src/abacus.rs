//! The classic Abacus single-row legalizer (Spindler et al., ISPD'08; reference \[27\]).
//!
//! Abacus places the cells assigned to one row in x-order with zero overlap while minimizing
//! the weighted quadratic displacement from their desired positions, using the well-known
//! cluster-merging dynamic programming. It cannot handle multi-row cells by itself — the reason
//! the paper's mixed-cell-height baselines need more machinery — but it is the core building
//! block of the analytical baseline and a useful reference for single-height designs.

use flex_placement::geom::Interval;
use serde::{Deserialize, Serialize};

/// One cell to be placed by Abacus within a row segment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AbacusCell {
    /// Caller-defined identifier (index into the caller's structures).
    pub id: usize,
    /// Desired x position (typically the global-placement x).
    pub desired_x: f64,
    /// Width in sites.
    pub width: i64,
    /// Weight of the cell's displacement in the objective (usually its area or pin count).
    pub weight: f64,
}

/// A cluster of cells placed abutted, as used by the Abacus dynamic programming.
#[derive(Debug, Clone)]
struct Cluster {
    first: usize,
    total_weight: f64,
    /// Σ w_i (x*_i − offset_i) — determines the optimal cluster position.
    q: f64,
    total_width: i64,
    x: f64,
}

/// A single row segment handled by Abacus.
#[derive(Debug, Clone)]
pub struct AbacusRow {
    /// The free interval the cells must be packed into.
    pub span: Interval,
}

impl AbacusRow {
    /// Create a row solver for a segment.
    pub fn new(span: Interval) -> Self {
        Self { span }
    }

    /// Place `cells` (any order) into the segment, returning `(id, x)` pairs, or `None` if the
    /// cells do not fit.
    ///
    /// Cells are processed in desired-x order; each is appended as its own cluster and clusters
    /// are merged while they overlap their predecessor, each merge re-optimizing the cluster
    /// position in closed form — the standard Abacus recurrence.
    pub fn place(&self, cells: &[AbacusCell]) -> Option<Vec<(usize, i64)>> {
        let total_width: i64 = cells.iter().map(|c| c.width).sum();
        if total_width > self.span.len() {
            return None;
        }
        let mut order: Vec<&AbacusCell> = cells.iter().collect();
        // total_cmp: a NaN desired position (degenerate global placement) must not panic the
        // sort — NaN anchors order last and the clamping below keeps the placement finite
        order.sort_by(|a, b| a.desired_x.total_cmp(&b.desired_x).then(a.id.cmp(&b.id)));

        let lo = self.span.lo as f64;
        let hi = self.span.hi as f64;

        let mut clusters: Vec<Cluster> = Vec::with_capacity(order.len());
        // width already accumulated per cluster when each cell was appended (offset of the cell
        // inside its cluster)
        for (idx, cell) in order.iter().enumerate() {
            let weight = cell.weight.max(1e-9);
            let mut cluster = Cluster {
                first: idx,
                total_weight: weight,
                q: weight * cell.desired_x,
                total_width: cell.width,
                x: cell.desired_x,
            };
            // clamp the singleton cluster into the segment
            cluster.x = cluster.x.clamp(lo, hi - cluster.total_width as f64);
            // merge with predecessors while overlapping
            while let Some(prev) = clusters.last() {
                if prev.x + prev.total_width as f64 > cluster.x + 1e-9 {
                    let prev = clusters.pop().unwrap();
                    // shift the appended cluster's desired positions by the predecessor's width
                    let merged_q =
                        prev.q + cluster.q - cluster.total_weight * prev.total_width as f64;
                    let mut merged = Cluster {
                        first: prev.first,
                        total_weight: prev.total_weight + cluster.total_weight,
                        q: merged_q,
                        total_width: prev.total_width + cluster.total_width,
                        x: 0.0,
                    };
                    merged.x =
                        (merged.q / merged.total_weight).clamp(lo, hi - merged.total_width as f64);
                    cluster = merged;
                } else {
                    break;
                }
            }
            if cluster.total_width as f64 > hi - lo + 1e-9 {
                return None;
            }
            clusters.push(cluster);
        }

        // expand clusters back into per-cell integer positions
        let mut result = vec![(0usize, 0i64); order.len()];
        for cluster in &clusters {
            let mut x = cluster.x.round() as i64;
            x = x.clamp(self.span.lo, self.span.hi - cluster.total_width);
            let mut offset = 0i64;
            for (k, cell) in order[cluster.first..].iter().enumerate() {
                let idx = cluster.first + k;
                if offset >= cluster.total_width {
                    break;
                }
                // stop once we have covered exactly this cluster's cells
                let covered: i64 = order[cluster.first..=idx].iter().map(|c| c.width).sum();
                result[idx] = (cell.id, x + offset);
                offset += cell.width;
                if covered == cluster.total_width {
                    break;
                }
            }
        }
        // fix bookkeeping: clusters partition the ordered cells contiguously, so simply walk them
        let mut out = Vec::with_capacity(order.len());
        let mut idx = 0usize;
        for cluster in &clusters {
            let mut x = cluster.x.round() as i64;
            x = x.clamp(self.span.lo, self.span.hi - cluster.total_width);
            let mut width_left = cluster.total_width;
            while width_left > 0 && idx < order.len() {
                let cell = order[idx];
                out.push((cell.id, x));
                x += cell.width;
                width_left -= cell.width;
                idx += 1;
            }
        }
        let _ = result;
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(id: usize, x: f64, w: i64) -> AbacusCell {
        AbacusCell {
            id,
            desired_x: x,
            width: w,
            weight: 1.0,
        }
    }

    fn overlaps(placed: &[(usize, i64)], cells: &[AbacusCell]) -> bool {
        let mut spans: Vec<(i64, i64)> = placed
            .iter()
            .map(|&(id, x)| (x, x + cells.iter().find(|c| c.id == id).unwrap().width))
            .collect();
        spans.sort();
        spans.windows(2).any(|w| w[0].1 > w[1].0)
    }

    #[test]
    fn non_overlapping_cells_stay_at_their_desired_positions() {
        let row = AbacusRow::new(Interval::new(0, 100));
        let cells = vec![cell(0, 10.0, 5), cell(1, 30.0, 5), cell(2, 60.0, 5)];
        let placed = row.place(&cells).unwrap();
        assert_eq!(placed, vec![(0, 10), (1, 30), (2, 60)]);
    }

    #[test]
    fn overlapping_cells_are_spread_symmetrically() {
        let row = AbacusRow::new(Interval::new(0, 100));
        // three cells all wanting x = 50
        let cells = vec![cell(0, 50.0, 4), cell(1, 50.0, 4), cell(2, 50.0, 4)];
        let placed = row.place(&cells).unwrap();
        assert!(!overlaps(&placed, &cells));
        // the merged cluster centres on the common desired position
        let min = placed.iter().map(|&(_, x)| x).min().unwrap();
        let max = placed.iter().map(|&(_, x)| x).max().unwrap();
        assert!(
            min >= 44 && max <= 54,
            "cluster should centre near 50: {placed:?}"
        );
    }

    #[test]
    fn segment_boundaries_are_respected() {
        let row = AbacusRow::new(Interval::new(10, 30));
        let cells = vec![cell(0, 0.0, 6), cell(1, 2.0, 6), cell(2, 100.0, 6)];
        let placed = row.place(&cells).unwrap();
        assert!(!overlaps(&placed, &cells));
        for &(_, x) in &placed {
            assert!(x >= 10 && x + 6 <= 30);
        }
    }

    #[test]
    fn overfull_segment_is_rejected() {
        let row = AbacusRow::new(Interval::new(0, 10));
        let cells = vec![cell(0, 0.0, 6), cell(1, 2.0, 6)];
        assert!(row.place(&cells).is_none());
        assert!(row.place(&[]).is_some());
    }

    #[test]
    fn displacement_is_reasonably_small() {
        let row = AbacusRow::new(Interval::new(0, 60));
        let cells: Vec<AbacusCell> = (0..10).map(|i| cell(i, 3.0 * i as f64 + 1.0, 4)).collect();
        let placed = row.place(&cells).unwrap();
        assert!(!overlaps(&placed, &cells));
        let total_disp: f64 = placed
            .iter()
            .map(|&(id, x)| (x as f64 - cells[id].desired_x).abs())
            .sum();
        assert!(
            total_disp / 10.0 < 6.0,
            "average displacement too large: {total_disp}"
        );
    }
}
