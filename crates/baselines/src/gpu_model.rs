//! A simple GPU execution model shared by the GPU-based baseline legalizers.
//!
//! The paper's Fig. 2(b)/(c) motivation is that GPU legalizers are limited not by raw FLOPs but
//! by (1) the number of *parallelizable regions*, which falls far short of the available CUDA
//! cores, and (2) the per-batch device synchronization needed to write the updated cell
//! positions back before the next batch can be formed. This model captures exactly those two
//! effects and nothing more.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// A CUDA-core style throughput model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuModel {
    /// Number of CUDA cores (GTX 1660 Ti: 1536; A800: 6912).
    pub cuda_cores: u64,
    /// Sustained per-core work items per second.
    pub items_per_core_per_s: f64,
    /// Kernel launch overhead per batch.
    pub kernel_launch: Duration,
    /// Device synchronization + host write-back overhead per batch.
    pub sync_overhead: Duration,
}

impl GpuModel {
    /// The NVIDIA GTX 1660 Ti used by the DATE'22 CPU-GPU legalizer.
    pub fn gtx_1660_ti() -> Self {
        Self {
            cuda_cores: 1536,
            items_per_core_per_s: 10.0e6,
            kernel_launch: Duration::from_micros(8),
            sync_overhead: Duration::from_micros(60),
        }
    }

    /// The NVIDIA A800 used by the ISPD'25 analytical legalizer.
    pub fn a800() -> Self {
        Self {
            cuda_cores: 6912,
            items_per_core_per_s: 60.0e6,
            kernel_launch: Duration::from_micros(8),
            sync_overhead: Duration::from_micros(120),
        }
    }

    /// Time to process one batch of `parallel_tasks`, each consisting of `items_per_task` work
    /// items, followed by a device synchronization.
    ///
    /// Only `min(parallel_tasks, cuda_cores)` tasks make progress at once — the effect Fig. 2(c)
    /// shows: adding cores beyond the number of parallelizable regions does not help.
    pub fn batch_time(&self, parallel_tasks: u64, items_per_task: u64) -> Duration {
        if parallel_tasks == 0 {
            return Duration::ZERO;
        }
        let waves = parallel_tasks.div_ceil(self.cuda_cores.max(1));
        let compute_s = waves as f64 * items_per_task as f64 / self.items_per_core_per_s;
        self.kernel_launch + Duration::from_secs_f64(compute_s) + self.sync_overhead
    }

    /// Fraction of a batch spent in synchronization rather than compute.
    pub fn sync_fraction(&self, parallel_tasks: u64, items_per_task: u64) -> f64 {
        let total = self.batch_time(parallel_tasks, items_per_task);
        if total.is_zero() {
            return 0.0;
        }
        self.sync_overhead.as_secs_f64() / total.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_cores_do_not_help_small_batches() {
        let small = GpuModel::gtx_1660_ti();
        let big = GpuModel {
            cuda_cores: 10_000,
            ..small
        };
        // 200 parallelizable regions: both GPUs do it in one wave
        assert_eq!(small.batch_time(200, 1000), big.batch_time(200, 1000));
        // 5000 regions: the bigger GPU wins
        assert!(big.batch_time(5000, 1000) < small.batch_time(5000, 1000));
    }

    #[test]
    fn sync_overhead_dominates_small_batches() {
        let gpu = GpuModel::gtx_1660_ti();
        let frac_small = gpu.sync_fraction(64, 200);
        let frac_large = gpu.sync_fraction(1536, 100_000);
        assert!(
            frac_small > 0.3,
            "sync share {frac_small:.2} of a small batch"
        );
        assert!(frac_large < frac_small);
    }

    #[test]
    fn empty_batch_is_free() {
        assert_eq!(GpuModel::a800().batch_time(0, 100), Duration::ZERO);
        assert_eq!(GpuModel::a800().sync_fraction(0, 100), 0.0);
    }
}
