//! Offline shim for `rand`.
//!
//! Provides the subset the workspace uses: `rngs::StdRng`, [`SeedableRng::seed_from_u64`], and
//! [`RngExt`] with `random::<f64>()` and `random_range(..)` over integer ranges. The generator
//! is SplitMix64 — deterministic, seeded, identical across platforms — which is exactly what
//! the benchmark generators need (the golden tests pin outputs produced from these streams).
//! The bit streams differ from the real `rand` crate's `StdRng`, so swapping in the real crate
//! would change generated benchmarks (and the golden files would need re-blessing).

use std::ops::{Range, RangeInclusive};

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Value types producible by [`RngExt::random`].
pub trait Random {
    /// Draw one value.
    fn random_from(rng: &mut rngs::StdRng) -> Self;
}

impl Random for f64 {
    fn random_from(rng: &mut rngs::StdRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for bool {
    fn random_from(rng: &mut rngs::StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample(self, rng: &mut rngs::StdRng) -> T;
}

macro_rules! impl_int_ranges {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "random_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "random_range on empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.next_below(span) as i128) as $t
            }
        }
    )+};
}

impl_int_ranges!(i32, i64, u32, u64, usize);

/// The generation methods of `rand::Rng` (named `RngExt` to match the seed's imports).
pub trait RngExt {
    /// Draw a value of type `T`.
    fn random<T: Random>(&mut self) -> T;

    /// Draw a value uniformly from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
}

pub mod rngs {
    //! Generator implementations.

    use super::{Random, RngExt, SampleRange, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn next_below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // mix the seed once so nearby seeds diverge immediately
            let mut rng = StdRng {
                state: seed ^ 0x51_7c_c1_b7_27_22_0a_95,
            };
            rng.next_u64();
            rng
        }
    }

    impl RngExt for StdRng {
        fn random<T: Random>(&mut self) -> T {
            T::random_from(self)
        }

        fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
            range.sample(self)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: i64 = rng.random_range(-5..5);
            assert!((-5..5).contains(&x));
            let y: usize = rng.random_range(1..=4);
            assert!((1..=4).contains(&y));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v: i64 = rng.random_range(0..=2);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
