//! Offline shim for `criterion`.
//!
//! Provides the API surface the `flex-bench` benches use — `Criterion::benchmark_group`,
//! `sample_size` / `measurement_time` / `warm_up_time`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` / `criterion_main!` macros — backed
//! by a simple wall-clock sampler instead of criterion's statistics engine. Each benchmark
//! runs one warm-up iteration, then up to `sample_size` timed iterations capped by
//! `measurement_time`, and prints min / mean / max per benchmark id.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, like criterion's two-part ids.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id consisting of just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Conversion accepted wherever criterion takes `impl IntoBenchmarkId` or `&str`.
pub trait IntoBenchmarkId {
    /// Render to the printed id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Time `f`, one call per sample.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // one warm-up iteration
        black_box(f());
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed());
            if budget_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

/// A named group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock cap on the sampling loop of one benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Accepted for API compatibility; the shim warms up with a single iteration regardless.
    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(id.into_id(), f);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.into_id(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: String, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher);
        let s = &bencher.samples;
        if s.is_empty() {
            println!("{}/{:<28} (no samples)", self.name, id);
            return;
        }
        let min = s.iter().min().unwrap();
        let max = s.iter().max().unwrap();
        let mean = s.iter().sum::<Duration>() / s.len() as u32;
        println!(
            "{}/{:<28} [{:>12.3?} {:>12.3?} {:>12.3?}]  ({} samples)",
            self.name,
            id,
            min,
            mean,
            max,
            s.len()
        );
    }

    /// End the group (printing happened as each benchmark ran).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            _criterion: self,
        }
    }
}

/// Declare a bench entry point running each listed function with a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50));
        let mut runs = 0usize;
        group.bench_function("noop", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        // warm-up + up to sample_size timed iterations
        assert!(runs >= 2);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("cpu", 8).into_id(), "cpu/8");
        assert_eq!(BenchmarkId::from_parameter(8).into_id(), "8");
        assert_eq!("plain".into_id(), "plain");
    }
}
