//! Offline shim for `rayon`.
//!
//! The build container has no network access, so this crate provides the small slice of the
//! rayon API the workspace uses, implemented with `std::thread::scope`:
//!
//! * `batch.par_iter().map(f).collect::<Vec<_>>()` — an *ordered* parallel map,
//! * `ThreadPoolBuilder::new().num_threads(n).build()?.install(|| …)` — a scoped override of
//!   the worker count (a thread-local, not a real persistent pool), and
//! * [`current_num_threads`].
//!
//! Semantics match rayon where it matters for this workspace: results come back in input
//! order, closures run on multiple OS threads (so they must be `Sync`), and a panic in any
//! worker propagates to the caller. Unlike real rayon there is no work stealing and threads
//! are spawned per call, which is fine for the coarse-grained batches the legalizers build.

use std::cell::Cell;
use std::fmt;

thread_local! {
    /// Worker count installed by [`ThreadPool::install`]; 0 = use the machine default.
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Number of worker threads parallel iterators will use in the current context.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(|c| c.get());
    if installed == 0 {
        default_threads()
    } else {
        installed
    }
}

/// Error building a thread pool (the shim never actually fails).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Create a builder with the default (machine) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker count (0 = machine default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool. Never fails in the shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: if self.num_threads == 0 {
                default_threads()
            } else {
                self.num_threads
            },
        })
    }
}

/// A "pool": in the shim, just a worker-count override scoped by [`ThreadPool::install`].
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's worker count active for parallel iterators.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = INSTALLED_THREADS.with(|c| c.replace(self.threads));
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        f()
    }

    /// Worker count of this pool.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Ordered parallel map of `f` over `items`, chunked across [`current_num_threads`] workers.
fn par_map_vec<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items;
    // split from the back to avoid repeated shifting, then restore order
    while !items.is_empty() {
        let at = items.len().saturating_sub(chunk_len);
        chunks.push(items.split_off(at));
    }
    chunks.reverse();
    let f = &f;
    let mut out: Vec<R> = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(p) => std::panic::resume_unwind(p),
            }
        }
    });
    out
}

/// Parallel iterator support: the subset of `rayon::iter` this workspace uses.
pub mod iter {
    use super::par_map_vec;

    /// A parallel iterator whose items can be mapped and collected in input order.
    pub trait ParallelIterator: Sized {
        /// Item type produced by the iterator.
        type Item: Send;

        /// Evaluate the iterator eagerly, preserving input order.
        fn drive(self) -> Vec<Self::Item>;

        /// Map every item through `f` in parallel.
        fn map<R, F>(self, f: F) -> Map<Self, F>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync,
        {
            Map { base: self, f }
        }

        /// Run `f` on every item in parallel.
        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Sync,
        {
            self.map(f).drive();
        }

        /// Collect the items, preserving input order.
        fn collect<C: FromIterator<Self::Item>>(self) -> C {
            self.drive().into_iter().collect()
        }
    }

    /// `.par_iter()` on `&self`, mirroring `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'a> {
        /// Item type (a reference into `self`).
        type Item: Send + 'a;
        /// Concrete iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;

        /// Borrowing parallel iterator over `self`.
        fn par_iter(&'a self) -> Self::Iter;
    }

    /// `.into_par_iter()` by value, mirroring `rayon::iter::IntoParallelIterator`.
    pub trait IntoParallelIterator {
        /// Item type.
        type Item: Send;
        /// Concrete iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;

        /// Consuming parallel iterator over `self`.
        fn into_par_iter(self) -> Self::Iter;
    }

    /// Borrowing parallel iterator over a slice.
    pub struct SliceIter<'a, T> {
        slice: &'a [T],
    }

    impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
        type Item = &'a T;

        fn drive(self) -> Vec<Self::Item> {
            self.slice.iter().collect()
        }
    }

    /// Consuming parallel iterator over a vector.
    pub struct VecIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParallelIterator for VecIter<T> {
        type Item = T;

        fn drive(self) -> Vec<Self::Item> {
            self.items
        }
    }

    /// Result of [`ParallelIterator::map`]; driving it runs the closure on worker threads.
    pub struct Map<I, F> {
        base: I,
        f: F,
    }

    impl<I, R, F> ParallelIterator for Map<I, F>
    where
        I: ParallelIterator,
        R: Send,
        F: Fn(I::Item) -> R + Sync,
    {
        type Item = R;

        fn drive(self) -> Vec<R> {
            par_map_vec(self.base.drive(), self.f)
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = SliceIter<'a, T>;

        fn par_iter(&'a self) -> SliceIter<'a, T> {
            SliceIter { slice: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = SliceIter<'a, T>;

        fn par_iter(&'a self) -> SliceIter<'a, T> {
            SliceIter { slice: self }
        }
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = VecIter<T>;

        fn into_par_iter(self) -> VecIter<T> {
            VecIter { items: self }
        }
    }
}

/// The rayon prelude: the traits needed for `.par_iter()` / `.map()` / `.collect()`.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ordered_parallel_map() {
        let v: Vec<i64> = (0..1000).collect();
        let out: Vec<i64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let seen = pool.install(current_num_threads);
        assert_eq!(seen, 3);
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let empty: Vec<i32> = Vec::new();
        let out: Vec<i32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7];
        let out: Vec<i32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn into_par_iter_consumes() {
        let v = vec![String::from("a"), String::from("b")];
        let out: Vec<String> = v.into_par_iter().map(|s| s + "!").collect();
        assert_eq!(out, vec!["a!", "b!"]);
    }
}
