//! Offline shim for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property tests use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(…)]`, `arg in strategy` bindings and
//!   doc-comment/attribute passthrough,
//! * range strategies over `i64` / `u64` / `usize` / `f64` (half-open, uniform),
//! * `prop::collection::vec(strategy, size_range)`,
//! * [`prop_assert!`] / [`prop_assert_eq!`] returning a [`test_runner::TestCaseError`].
//!
//! Inputs are drawn from a deterministic per-test RNG seeded from the test's module path and
//! name, so failures reproduce exactly across runs and machines. There is no shrinking: the
//! failing case's generated arguments are printed instead.

pub mod test_runner {
    //! Deterministic RNG and the error type test bodies return.

    use std::fmt;

    /// Error produced by a failing `prop_assert!` inside a test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Build a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.message)
        }
    }

    /// SplitMix64: tiny, fast, deterministic, good enough for test-input generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test identifier (module path + test name).
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name, mixed so distinct tests get well-separated streams
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self {
                state: h ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn next_below(&mut self, bound: u64) -> u64 {
            // multiply-shift; bias is irrelevant at test-input scale
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait: something that can generate a value from the test RNG.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of test inputs.
    pub trait Strategy {
        /// Type of the generated value.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl Strategy for Range<i64> {
        type Value = i64;

        fn generate(&self, rng: &mut TestRng) -> i64 {
            assert!(self.start < self.end, "empty i64 range strategy");
            let span = (self.end - self.start) as u64;
            self.start + rng.next_below(span) as i64
        }
    }

    impl Strategy for Range<i32> {
        type Value = i32;

        fn generate(&self, rng: &mut TestRng) -> i32 {
            assert!(self.start < self.end, "empty i32 range strategy");
            let span = (self.end as i64 - self.start as i64) as u64;
            (self.start as i64 + rng.next_below(span) as i64) as i32
        }
    }

    impl Strategy for Range<u64> {
        type Value = u64;

        fn generate(&self, rng: &mut TestRng) -> u64 {
            assert!(self.start < self.end, "empty u64 range strategy");
            self.start + rng.next_below(self.end - self.start)
        }
    }

    impl Strategy for Range<usize> {
        type Value = usize;

        fn generate(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty usize range strategy");
            self.start + rng.next_below((self.end - self.start) as u64) as usize
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy generating a `Vec` of values with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy: `size` elements (half-open range), each drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration (`#![proptest_config(…)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{})",
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}` ({}:{})",
                left,
                right,
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {} ({}:{})",
                left,
                right,
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}` ({}:{})",
                left,
                right,
                file!(),
                line!()
            )));
        }
    }};
}

/// Define property tests: each `fn name(arg in strategy, …) { body }` becomes a `#[test]`
/// running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)]
      $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    $( let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng); )+
                    let args_desc = {
                        let mut s = String::new();
                        $(
                            s.push_str(stringify!($arg));
                            s.push_str(" = ");
                            s.push_str(&format!("{:?}", $arg));
                            s.push_str(", ");
                        )+
                        s
                    };
                    let body = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    };
                    if let Err(e) = body() {
                        panic!(
                            "proptest case {case} of {} failed: {e}\n  inputs: {args_desc}",
                            stringify!($name),
                        );
                    }
                }
            }
        )*
    };
    ( $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )* ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( $(#[$meta])* fn $name ( $($arg in $strategy),+ ) $body )*
        }
    };
}

/// The proptest prelude: strategies, config, assertion macros, and the `prop` module alias.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Alias so `prop::collection::vec(…)` resolves, as with the real crate's prelude.
    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_stay_in_bounds(a in -50i64..50, b in 0u64..10, c in 1usize..4, d in 0.25f64..0.75) {
            prop_assert!((-50..50).contains(&a));
            prop_assert!(b < 10);
            prop_assert!((1..4).contains(&c));
            prop_assert!((0.25..0.75).contains(&d));
        }

        /// Collection sizes respect their range.
        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0.0f64..1.0, 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            for x in &v {
                prop_assert!((0.0..1.0).contains(x));
            }
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        let seq_a: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let seq_b: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let seq_c: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(seq_a, seq_b);
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn inner(x in 0i64..10) {
                prop_assert!(x < 0, "x was {x}");
            }
        }
        inner();
    }
}
