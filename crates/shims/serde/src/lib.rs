//! Offline shim for `serde`.
//!
//! Provides the `Serialize` / `Deserialize` derive macros as no-ops so that
//! `use serde::{Deserialize, Serialize};` + `#[derive(Serialize, Deserialize)]` compile without
//! network access. No trait machinery is provided — nothing in this workspace bounds on the
//! serde traits. See `crates/shims/serde-derive` for details.

pub use serde_derive::{Deserialize, Serialize};
