//! Offline shim for `serde_derive`.
//!
//! The build container has no network access, so the real `serde` cannot be fetched. The
//! workspace only uses `#[derive(Serialize, Deserialize)]` as inert markers (no code in the
//! tree bounds on the serde traits or calls `serde_json`), so these derives expand to nothing.
//! Structured persistence that the repo actually needs (e.g. the golden-stats JSON in
//! `flex-bench`) is hand-rolled instead. Swapping this shim for the real crate is a
//! `Cargo.toml`-only change.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
