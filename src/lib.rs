//! # FLEX — FPGA-CPU Synergy for Mixed-Cell-Height Legalization Acceleration
//!
//! This is the facade crate of the FLEX reproduction workspace. It re-exports every
//! workspace crate under a single name so that examples, integration tests, and downstream
//! users can depend on one crate:
//!
//! * [`placement`] — layout substrate (cells, rows, segments, benchmarks, metrics).
//! * [`mgl`] — the Multi-row Global Legalization algorithm FLEX builds on.
//! * [`fpga`] — cycle-approximate FPGA hardware model (BRAM, pipelines, PEs, resources).
//! * [`core`] — the FLEX accelerator itself (task assignment, multi-granularity pipeline,
//!   SACS architecture, timing model).
//! * [`baselines`] — the legalizers the paper compares against.
//! * [`eco`] — legalization as a service: the resident incremental ECO engine and its
//!   Unix-socket front end (`flex-eco-serve` / `flex-eco-client`).
//!
//! ## Quickstart
//!
//! Every legalization engine in the workspace implements the unified
//! [`Legalizer`](mgl::api::Legalizer) trait and reports through one
//! [`LegalizeReport`](mgl::api::LegalizeReport);
//! [`EngineKind`](core::session::EngineKind) is the factory and
//! [`FlexSession`](core::session::FlexSession) the comparison harness:
//!
//! ```
//! use flex::placement::benchmark::{BenchmarkSpec, generate};
//! use flex::core::config::FlexConfig;
//! use flex::core::session::EngineKind;
//!
//! let spec = BenchmarkSpec::tiny("demo", 42);
//! let mut design = generate(&spec);
//! let engine = EngineKind::Flex.build(&FlexConfig::default());
//! let report = engine.legalize(&mut design);
//! assert!(report.legal);
//! ```

pub use flex_baselines as baselines;
pub use flex_core as core;
pub use flex_eco as eco;
pub use flex_fpga as fpga;
pub use flex_mgl as mgl;
pub use flex_obs as obs;
pub use flex_placement as placement;
