//! Acceptance tests for the parallel region-sharded MGL engine.
//!
//! The headline criterion — 4 threads beat the serial legalizer's wall-clock on a ≥50k-cell
//! benchmark while producing a byte-identical legality verdict and displacement stats — needs
//! several minutes of CPU and at least 4 hardware cores, so it is `#[ignore]`d by default:
//!
//! ```text
//! cargo test --release --test parallel_scaling -- --ignored
//! ```
//!
//! The always-on test checks the same equivalence contract at a scale that fits in a normal
//! test run. Wall-clock speedup is only asserted when the machine actually has the cores
//! (`std::thread::available_parallelism`); the placement/stats equivalence is asserted
//! unconditionally.

use flex::mgl::parallel::ParallelMglLegalizer;
use flex::mgl::{MglConfig, MglLegalizer, OrderingStrategy};
use flex::placement::benchmark::{generate, BenchmarkSpec};
use std::time::Instant;

fn cfg() -> MglConfig {
    MglConfig {
        ordering: OrderingStrategy::SizeDescending,
        ..MglConfig::default()
    }
}

fn spec(cells: usize) -> BenchmarkSpec {
    BenchmarkSpec {
        num_cells: cells,
        ..BenchmarkSpec::medium("par-scaling", 42)
    }
    .with_density(0.45)
}

/// Run serial and 4-thread parallel on the same spec and assert the equivalence contract.
/// Returns (serial_seconds, parallel_seconds).
fn run_and_compare(cells: usize) -> (f64, f64) {
    let spec = spec(cells);

    let mut d_serial = generate(&spec);
    let t = Instant::now();
    let serial = MglLegalizer::new(cfg()).legalize(&mut d_serial);
    let t_serial = t.elapsed().as_secs_f64();

    let mut d_parallel = generate(&spec);
    let t = Instant::now();
    let parallel = ParallelMglLegalizer::new(4, cfg()).legalize(&mut d_parallel);
    let t_parallel = t.elapsed().as_secs_f64();

    // byte-identical legality verdict and displacement stats
    assert!(
        serial.legal,
        "serial run illegal; failed: {:?}",
        serial.failed
    );
    assert_eq!(serial.legal, parallel.result.legal);
    assert_eq!(
        serial.average_displacement.to_bits(),
        parallel.result.average_displacement.to_bits(),
        "average displacement must be byte-identical"
    );
    assert_eq!(
        serial.max_displacement.to_bits(),
        parallel.result.max_displacement.to_bits(),
        "max displacement must be byte-identical"
    );
    assert_eq!(serial.placed_in_region, parallel.result.placed_in_region);
    assert_eq!(serial.fallback_placed, parallel.result.fallback_placed);
    let ps: Vec<(i64, i64)> = d_serial
        .cells
        .iter()
        .filter(|c| !c.fixed)
        .map(|c| (c.x, c.y))
        .collect();
    let pp: Vec<(i64, i64)> = d_parallel
        .cells
        .iter()
        .filter(|c| !c.fixed)
        .map(|c| (c.x, c.y))
        .collect();
    assert_eq!(ps, pp, "placements must be identical");

    (t_serial, t_parallel)
}

#[test]
fn parallel_engine_matches_serial_at_moderate_scale() {
    let (t_serial, t_parallel) = run_and_compare(2_500);
    eprintln!("2.5k cells: serial {t_serial:.2}s, parallel(4) {t_parallel:.2}s");
}

/// The acceptance benchmark: ≥50k cells, 4 threads vs. serial. Requires a multi-core machine
/// for the wall-clock assertion and several minutes of CPU; run with `-- --ignored`.
#[test]
#[ignore = "needs >= 4 hardware cores and several minutes; run with -- --ignored"]
fn parallel_beats_serial_wall_clock_on_50k_cells() {
    let (t_serial, t_parallel) = run_and_compare(50_000);
    eprintln!("50k cells: serial {t_serial:.2}s, parallel(4) {t_parallel:.2}s");
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores >= 4 {
        assert!(
            t_parallel < t_serial,
            "4 threads must beat serial wall-clock on {cores} cores: {t_parallel:.2}s vs {t_serial:.2}s"
        );
    } else {
        eprintln!(
            "only {cores} hardware core(s): wall-clock assertion skipped, equivalence verified"
        );
    }
}
