//! Acceptance tests for the parallel region-sharded MGL engine.
//!
//! The headline criteria — on a ≥50k-cell benchmark, 4 threads beat the serial legalizer's
//! wall-clock, and the double-buffered pipeline beats the non-pipelined engine — need
//! several minutes of CPU and at least 4 hardware cores, so they are `#[ignore]`d by
//! default:
//!
//! ```text
//! cargo test --release --test parallel_scaling -- --ignored
//! ```
//!
//! The always-on tests check the same equivalence contract (byte-identical stats,
//! cell-for-cell placement) at a scale that fits in a normal test run, for both a static
//! ordering and the FLEX default dynamic ordering. Wall-clock speedup is only asserted when
//! the machine actually has the cores (`std::thread::available_parallelism`); the
//! placement/stats equivalence is asserted unconditionally.

use flex::mgl::parallel::ParallelMglLegalizer;
use flex::mgl::{MglConfig, MglLegalizer, OrderingStrategy};
use flex::placement::benchmark::{generate, BenchmarkSpec};
use std::time::Instant;

fn static_cfg() -> MglConfig {
    MglConfig {
        ordering: OrderingStrategy::SizeDescending,
        ..MglConfig::default()
    }
}

fn spec(cells: usize) -> BenchmarkSpec {
    BenchmarkSpec {
        num_cells: cells,
        ..BenchmarkSpec::medium("par-scaling", 42)
    }
    .with_density(0.45)
}

/// Run serial and two 4-thread parallel variants (pipelined and not) on the same spec and
/// assert the equivalence contract. Returns (serial, pipelined, non_pipelined) seconds.
fn run_and_compare(cells: usize, cfg: &MglConfig) -> (f64, f64, f64) {
    let spec = spec(cells);

    let mut d_serial = generate(&spec);
    let t = Instant::now();
    let serial = MglLegalizer::new(cfg.clone()).legalize(&mut d_serial);
    let t_serial = t.elapsed().as_secs_f64();
    assert!(
        serial.legal,
        "serial run illegal; failed: {:?}",
        serial.failed
    );
    let ps: Vec<(i64, i64)> = d_serial
        .cells
        .iter()
        .filter(|c| !c.fixed)
        .map(|c| (c.x, c.y))
        .collect();

    let mut times = [0.0f64; 2];
    for (i, pipelined) in [true, false].into_iter().enumerate() {
        let mut d_parallel = generate(&spec);
        let t = Instant::now();
        let parallel = ParallelMglLegalizer::new(4, cfg.clone())
            .with_pipelining(pipelined)
            .legalize(&mut d_parallel);
        times[i] = t.elapsed().as_secs_f64();

        // byte-identical legality verdict and displacement stats
        assert_eq!(serial.legal, parallel.result.legal);
        assert_eq!(
            serial.average_displacement.to_bits(),
            parallel.result.average_displacement.to_bits(),
            "average displacement must be byte-identical (pipelined {pipelined})"
        );
        assert_eq!(
            serial.max_displacement.to_bits(),
            parallel.result.max_displacement.to_bits(),
            "max displacement must be byte-identical (pipelined {pipelined})"
        );
        assert_eq!(serial.placed_in_region, parallel.result.placed_in_region);
        assert_eq!(serial.fallback_placed, parallel.result.fallback_placed);
        let pp: Vec<(i64, i64)> = d_parallel
            .cells
            .iter()
            .filter(|c| !c.fixed)
            .map(|c| (c.x, c.y))
            .collect();
        assert_eq!(
            ps, pp,
            "placements must be identical (pipelined {pipelined})"
        );
        assert_eq!(
            parallel.shards.order_invalidated, 0,
            "no speculation may be orphaned by an order divergence"
        );
    }

    (t_serial, times[0], times[1])
}

#[test]
fn parallel_engine_matches_serial_at_moderate_scale() {
    let (t_serial, t_pipe, t_nopipe) = run_and_compare(2_500, &static_cfg());
    eprintln!(
        "2.5k cells static: serial {t_serial:.2}s, pipelined(4) {t_pipe:.2}s, \
         non-pipelined(4) {t_nopipe:.2}s"
    );
}

#[test]
fn parallel_engine_matches_serial_on_the_dynamic_flex_ordering() {
    // the FLEX default configuration — previously the serial-degradation branch, now the
    // peeked-prefix speculative path
    let (t_serial, t_pipe, t_nopipe) = run_and_compare(2_500, &MglConfig::flex());
    eprintln!(
        "2.5k cells dynamic: serial {t_serial:.2}s, pipelined(4) {t_pipe:.2}s, \
         non-pipelined(4) {t_nopipe:.2}s"
    );
}

/// The acceptance benchmark: ≥50k cells, 4 threads vs. serial, pipelined vs. not. Requires a
/// multi-core machine for the wall-clock assertions and several minutes of CPU; run with
/// `-- --ignored`.
#[test]
#[ignore = "needs >= 4 hardware cores and several minutes; run with -- --ignored"]
fn parallel_beats_serial_wall_clock_on_50k_cells() {
    let (t_serial, t_pipe, t_nopipe) = run_and_compare(50_000, &static_cfg());
    eprintln!(
        "50k cells: serial {t_serial:.2}s, pipelined(4) {t_pipe:.2}s, \
         non-pipelined(4) {t_nopipe:.2}s"
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores >= 4 {
        assert!(
            t_pipe < t_serial,
            "4 pipelined threads must beat serial wall-clock on {cores} cores: \
             {t_pipe:.2}s vs {t_serial:.2}s"
        );
        assert!(
            t_pipe < t_nopipe,
            "the double-buffered pipeline must beat the barrier-per-batch engine on \
             {cores} cores: {t_pipe:.2}s vs {t_nopipe:.2}s"
        );
    } else {
        eprintln!(
            "only {cores} hardware core(s): wall-clock assertions skipped, equivalence verified"
        );
    }
}
