//! The observability layer's contract: spans **observe, never perturb**.
//!
//! The serial oracle and the parallel engine must produce bit-identical placements with
//! instrumentation enabled and disabled — enabling spans changes wall-clock only, never a
//! single coordinate or a stats bit. These tests run each engine both ways on the same
//! seeded design and compare placements exactly (integer coordinates, f64 stats by bits).
//!
//! The tests share the process-global enable flag, so they serialize on a mutex and
//! restore the disabled default before releasing it.

use flex::mgl::parallel::ParallelMglLegalizer;
use flex::mgl::{MglConfig, MglLegalizer};
use flex::placement::benchmark::{generate, BenchmarkSpec};
use flex::placement::layout::Design;
use std::sync::Mutex;

static FLAG_LOCK: Mutex<()> = Mutex::new(());

/// Every bit of placement state that an instrumentation bug could plausibly disturb.
#[derive(PartialEq, Debug)]
struct Placement {
    positions: Vec<(i64, i64)>,
    avg_displacement_bits: u64,
    legal: bool,
}

fn capture(design: &Design, avg_displacement: f64, legal: bool) -> Placement {
    Placement {
        positions: design.cells.iter().map(|c| (c.x, c.y)).collect(),
        avg_displacement_bits: avg_displacement.to_bits(),
        legal,
    }
}

fn run_serial(spec: &BenchmarkSpec) -> Placement {
    let mut d = generate(spec);
    let result = MglLegalizer::new(MglConfig::default()).legalize(&mut d);
    capture(&d, result.average_displacement, result.legal)
}

fn run_parallel(spec: &BenchmarkSpec, depth: usize) -> Placement {
    let mut d = generate(spec);
    let out = ParallelMglLegalizer::new(4, MglConfig::default())
        .with_pipeline_depth(depth)
        .legalize(&mut d);
    capture(&d, out.result.average_displacement, out.result.legal)
}

fn assert_observation_free(label: &str, run: impl Fn() -> Placement) {
    let _guard = FLAG_LOCK.lock().unwrap();
    flex_obs::set_enabled(false);
    let disabled = run();
    flex_obs::set_enabled(true);
    let enabled = run();
    flex_obs::set_enabled(false);
    assert!(disabled.legal, "{label}: disabled run must be legal");
    assert_eq!(
        disabled, enabled,
        "{label}: enabling spans must not change a single placement bit"
    );
}

#[test]
fn serial_oracle_is_bit_identical_with_spans_enabled() {
    let spec = BenchmarkSpec::tiny("obs-bitexact-serial", 17);
    assert_observation_free("serial", || run_serial(&spec));
}

#[test]
fn parallel_pipelined_is_bit_identical_with_spans_enabled() {
    let spec = BenchmarkSpec::tiny("obs-bitexact-par", 17);
    assert_observation_free("parallel depth 2", || run_parallel(&spec, 2));
}

#[test]
fn parallel_barrier_is_bit_identical_with_spans_enabled() {
    let spec = BenchmarkSpec::tiny("obs-bitexact-barrier", 19);
    assert_observation_free("parallel depth 1", || run_parallel(&spec, 1));
}

/// The cross-engine oracle equivalence (serial ≡ parallel, byte for byte) must survive
/// instrumentation in BOTH states — the pairing the golden Table 1 test pins with spans
/// disabled, re-checked here with spans enabled.
#[test]
fn serial_equals_parallel_with_spans_enabled() {
    let _guard = FLAG_LOCK.lock().unwrap();
    flex_obs::set_enabled(true);
    let spec = BenchmarkSpec::tiny("obs-bitexact-cross", 23);
    let serial = run_serial(&spec);
    let parallel = run_parallel(&spec, 2);
    flex_obs::set_enabled(false);
    assert!(serial.legal);
    assert_eq!(
        serial, parallel,
        "serial and parallel must stay byte-identical with spans enabled"
    );
}
