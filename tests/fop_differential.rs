//! Differential property suite for the arena-allocated FOP kernel.
//!
//! The scratch-based kernel (`fop::find_optimal_position_with`) must return **bit-identical**
//! results to the allocating reference implementation (`fop::reference`) it replaced: the
//! same `Placement` (x, row, cost — exact float equality, no tolerance), the same work
//! counters (they feed the FPGA performance model and the golden traces), for both
//! [`FopVariant`]s and both [`ShiftAlgorithm`]s, on randomly generated regions. The commit
//! plan derived from a placement must likewise match the one derived from the allocating
//! shift functions.

use flex::mgl::config::{FopVariant, MglConfig, ShiftAlgorithm};
use flex::mgl::fop::{self, FopScratch, TargetSpec};
use flex::mgl::legalize::plan_commit_with;
use flex::mgl::region::{LocalCell, LocalRegion, LocalSegment};
use flex::mgl::shift::{shift_original, Phase, ShiftProblem};
use flex::mgl::stats::FopOpStats;
use flex::placement::cell::CellId;
use flex::placement::geom::{Interval, Rect};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Build a random region (non-overlapping cells, possibly multi-row) plus a target spec.
fn random_case(seed: u64) -> (LocalRegion, TargetSpec) {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows = rng.random_range(1..=5i64);
    let width = rng.random_range(24..=96i64);
    let mut region = LocalRegion {
        target: CellId(100_000),
        window: Rect::new(0, 0, width, rows),
        segments: (0..rows)
            .map(|r| LocalSegment {
                row: r,
                span: Interval::new(0, width),
            })
            .collect(),
        cells: Vec::new(),
        density: 0.0,
    };
    let mut occupied: Vec<Vec<Interval>> = vec![Vec::new(); rows as usize];
    let mut id = 0u32;
    for _ in 0..rng.random_range(4..=24) {
        let h = rng.random_range(1..=rows.min(4));
        let y = rng.random_range(0..=(rows - h));
        let w = rng.random_range(2..=8i64);
        if w > width {
            continue;
        }
        let x = rng.random_range(0..=(width - w));
        let span = Interval::new(x, x + w);
        let clash = (y..y + h).any(|r| occupied[r as usize].iter().any(|iv| iv.overlaps(&span)));
        if clash {
            continue;
        }
        for r in y..y + h {
            occupied[r as usize].push(span);
        }
        region.cells.push(LocalCell {
            id: CellId(id),
            x,
            y,
            width: w,
            height: h,
            gx: x as f64 + rng.random_range(-4..=4i64) as f64,
        });
        id += 1;
    }
    let target = TargetSpec {
        width: rng.random_range(2..=9i64),
        height: rng.random_range(1..=rows),
        gx: rng.random_range(0..width) as f64,
        gy: rng.random_range(0..rows) as f64 + 0.25,
        parity: match rng.random_range(0..4u32) {
            0 => Some(0),
            1 => Some(1),
            _ => None,
        },
    };
    (region, target)
}

const CONFIGS: [(ShiftAlgorithm, FopVariant); 4] = [
    (ShiftAlgorithm::Original, FopVariant::Original),
    (ShiftAlgorithm::Original, FopVariant::Reorganized),
    (ShiftAlgorithm::Sacs, FopVariant::Original),
    (ShiftAlgorithm::Sacs, FopVariant::Reorganized),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The scratch kernel returns bit-identical placements and work counters to the
    /// allocating reference, with one scratch reused across every case and configuration
    /// (which also exercises cross-region buffer reuse).
    #[test]
    fn scratch_fop_is_bit_identical_to_the_reference(seed in 0u64..1_000_000) {
        let (region, target) = random_case(seed);
        let mut scratch = FopScratch::new();
        for (shift, fopv) in CONFIGS {
            let cfg = MglConfig {
                shift,
                fop: fopv,
                ..MglConfig::default()
            };
            let mut s_ref = FopOpStats::default();
            let mut s_new = FopOpStats::default();
            let reference = fop::reference::find_optimal_position(&region, &target, &cfg, &mut s_ref);
            let scratched =
                fop::find_optimal_position_with(&region, &target, &cfg, &mut s_new, &mut scratch);
            prop_assert_eq!(
                &reference.best,
                &scratched.best,
                "placement diverged: seed {} shift {:?} fop {:?}",
                seed,
                shift,
                fopv
            );
            prop_assert_eq!(
                &reference.work,
                &scratched.work,
                "work counters diverged: seed {} shift {:?} fop {:?}",
                seed,
                shift,
                fopv
            );
        }
    }

    /// The scratch-backed insertion-point enumeration resolves exactly the points of the
    /// allocating oracle — same points, same order (the order matters: the `max_points` cap
    /// keeps a prefix) — with one scratch reused across every case.
    #[test]
    fn scratch_enumeration_is_identical_to_the_allocating_oracle(seed in 0u64..1_000_000) {
        use flex::mgl::insertion::{enumerate_insertion_points, enumerate_insertion_points_into, InsertionScratch};
        let (region, target) = random_case(seed);
        let mut scratch = InsertionScratch::default();
        for cap in [160usize, 7] {
            let expect = enumerate_insertion_points(
                &region, target.width, target.height, target.parity, target.gx, cap,
            );
            let n = enumerate_insertion_points_into(
                &region, target.width, target.height, target.parity, target.gx, cap, &mut scratch,
            );
            prop_assert_eq!(n, expect.len(), "seed {} cap {}: point count", seed, cap);
            prop_assert_eq!(scratch.points(), &expect[..], "seed {} cap {}", seed, cap);
        }
    }

    /// Commit planning through the scratch arena matches the positions the allocating shift
    /// functions produce, and is insensitive to scratch reuse (fresh scratch ≡ warm scratch).
    #[test]
    fn scratch_commit_plans_match_allocating_shift_positions(seed in 0u64..1_000_000) {
        let (region, target) = random_case(seed);
        for (shift, fopv) in CONFIGS {
            let cfg = MglConfig {
                shift,
                fop: fopv,
                ..MglConfig::default()
            };
            let mut stats = FopOpStats::default();
            let mut warm = FopScratch::new();
            let out = fop::find_optimal_position_with(&region, &target, &cfg, &mut stats, &mut warm);
            let Some(best) = out.best else { continue };

            let warm_plan = plan_commit_with(&region, &best, &target, &cfg, &mut warm);
            let fresh_plan = plan_commit_with(&region, &best, &target, &cfg, &mut FopScratch::new());
            prop_assert_eq!(&warm_plan, &fresh_plan, "seed {}: scratch reuse changed the plan", seed);

            if let Some(plan) = warm_plan {
                // the plan's moves must equal the allocating canonical shift at the
                // committed position (SACS reorders its streaming output but resolves to
                // the same per-cell positions, so the canonical fixpoint is the oracle)
                let problem = ShiftProblem {
                    region: &region,
                    point: &best.point,
                    target_width: target.width,
                    target_height: target.height,
                    target_x: best.x,
                };
                let (left, right) = shift_original(&problem).expect("committed plan implies feasible shift");
                let mut pos: Vec<i64> = region.cells.iter().map(|c| c.x).collect();
                for phase in [Phase::Left, Phase::Right] {
                    let outps = if phase == Phase::Left { &left } else { &right };
                    for &(i, x) in &outps.positions {
                        pos[i] = x;
                    }
                }
                for &(id, new_x) in &plan.moves {
                    let idx = region.cells.iter().position(|c| c.id == id).unwrap();
                    prop_assert_eq!(pos[idx], new_x, "seed {}: move mismatch for cell {:?}", seed, id);
                    prop_assert!(region.cells[idx].x != new_x, "plan contains a no-op move");
                }
                prop_assert_eq!(plan.x, best.x);
                prop_assert_eq!(plan.row, best.row);
            }
        }
    }
}
