//! Integration tests spanning the whole workspace: benchmark generation → legalization (all
//! four legalizers) → legality verification → acceleration estimate.

use flex::baselines::cpu::CpuLegalizer;
use flex::baselines::cpu_gpu::CpuGpuLegalizer;
use flex::core::accelerator::FlexAccelerator;
use flex::core::config::{FlexConfig, TaskAssignment};
use flex::core::session::FlexSession;
use flex::mgl::{MglConfig, MglLegalizer};
use flex::placement::benchmark::{self, BenchmarkSpec};
use flex::placement::iccad2017;
use flex::placement::legality::check_legality_with;

fn tiny(seed: u64) -> flex::placement::Design {
    benchmark::generate(&BenchmarkSpec::tiny("e2e", seed))
}

#[test]
fn every_legalizer_produces_a_legal_placement_on_the_same_case() {
    // all six engines through the unified session, each on its own copy of the same design
    let runs = FlexSession::new(tiny(100))
        .with_config(FlexConfig::flex().with_host_threads(4))
        .all_engines()
        .run();
    for run in &runs {
        assert!(run.report.legal, "{} illegal", run.kind.name());
        assert!(check_legality_with(&run.design, true).is_legal());
    }
}

#[test]
fn flex_quality_is_competitive_with_the_cpu_baseline() {
    // the paper reports FLEX improving quality by ~1% over the multi-threaded CPU legalizer and
    // ~4% over the CPU-GPU legalizer; at small synthetic scale we only require "never much
    // worse, usually at least as good"
    // Synthetic 300-cell cases carry a lot of noise, so the bound is loose; the Table 1
    // reproduction (report_table1) is where the average-quality comparison is made.
    let mut ratios = Vec::new();
    for seed in 0..4 {
        let mut d_flex = tiny(200 + seed);
        let mut d_cpu = tiny(200 + seed);
        let flexr = FlexAccelerator::new(FlexConfig::flex()).legalize(&mut d_flex);
        let cpu = CpuLegalizer::new(8).legalize(&mut d_cpu);
        if !(flexr.result.legal && cpu.legal) {
            // a 300-cell synthetic case can be genuinely infeasible for the no-shift fallback;
            // legality-under-feasibility is covered by the property tests, quality is the topic here
            eprintln!("seed {seed}: skipped (placement incomplete)");
            continue;
        }
        let ratio = flexr.average_displacement() / cpu.average_displacement.max(1e-9);
        assert!(ratio < 1.3, "seed {seed}: FLEX quality ratio {ratio:.3}");
        ratios.push(ratio);
    }
    assert!(ratios.len() >= 2, "too few comparable runs");
    let geomean = ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64;
    assert!(
        geomean.exp() < 1.15,
        "FLEX quality should track the CPU baseline: {ratios:?}"
    );
}

#[test]
fn flex_offload_pays_off_against_the_software_run() {
    let spec = iccad2017::spec(iccad2017::case("fft_a_md2").unwrap(), 0.02, 3);
    let mut d_flex = benchmark::generate(&spec);
    let mut d_cpu = benchmark::generate(&spec);
    let mut d_gpu = benchmark::generate(&spec);

    let flexr = FlexAccelerator::new(FlexConfig::flex()).legalize(&mut d_flex);
    let cpu = CpuLegalizer::new(8).legalize(&mut d_cpu);
    let gpu = CpuGpuLegalizer::default().legalize(&mut d_gpu);

    assert!(flexr.result.legal && cpu.legal && gpu.legal);
    // The FPGA-side offload must pay off against the software run it was derived from and
    // against the DATE'22 estimate. Acc(T) > 1 needs designs large enough for FOP to dominate
    // the host-side bookkeeping (see EXPERIMENTS.md), which is outside the unit-test budget,
    // so it is only reported, not asserted, here.
    let acc_t = cpu.seconds() / flexr.seconds();
    let acc_d = gpu.seconds() / flexr.seconds();
    println!("Acc(T) = {acc_t:.2}, Acc(D) = {acc_d:.2}");
    assert!(flexr.timing.speedup_vs_software > 1.0);
    assert!(
        flexr.software.fop > flexr.timing.fpga_time,
        "the offloaded FOP must be cheaper on the FPGA than in software"
    );
}

#[test]
fn task_assignment_and_pe_count_ablations_point_the_right_way() {
    // Fig. 10 compares the two task assignments on the same workload, so estimate both from
    // one recorded trace instead of comparing wall-clocks of two separate measured runs
    // (which is noise-dominated at 300 cells). The software breakdown is pinned to the
    // paper's operating point — FOP dominates and the FPGA-side time is comparable to the
    // CPU bookkeeping — which makes the comparison deterministic.
    let mut d = tiny(300);
    let flexr = FlexAccelerator::new(FlexConfig::flex()).legalize(&mut d);
    let trace = flexr
        .result
        .trace
        .clone()
        .expect("flex config collects the trace");

    let software =
        flex::core::timing::SoftwareBreakdown::pinned_to_fpga_time(flexr.timing.fpga_time);
    let base = flex::core::timing::estimate(&FlexConfig::flex(), &trace, &software);
    let offload = flex::core::timing::estimate(
        &FlexConfig::flex().with_assignment(TaskAssignment::FopAndUpdateOnFpga),
        &trace,
        &software,
    );
    assert!(
        offload.total > base.total,
        "Fig. 10: offloading insert & update must not pay off ({:?} vs {:?})",
        offload.total,
        base.total
    );
    assert!(offload.visible_transfer > base.visible_transfer);
    assert!(offload.fpga_time > base.fpga_time);

    let mut d3 = tiny(300);
    let one_pe = FlexAccelerator::new(FlexConfig::flex().with_pes(1)).legalize(&mut d3);
    assert!(one_pe.timing.fpga_time >= flexr.timing.fpga_time);
}

#[test]
fn legalization_survives_failure_injection() {
    // blockage-heavy design plus fully blocked rows: the legalizer must either place every cell
    // legally or report the failures explicitly — never silently emit an illegal layout
    let spec = benchmark::blockage_heavy_spec("hostile", 17);
    let mut d = benchmark::generate(&spec);
    benchmark::block_row(&mut d, 0);
    let middle_row = d.num_rows / 2;
    benchmark::block_row(&mut d, middle_row);
    let res = MglLegalizer::new(MglConfig::flex()).legalize(&mut d);
    if res.legal {
        assert!(res.failed.is_empty());
        assert!(check_legality_with(&d, true).is_legal());
    } else {
        assert!(
            !res.failed.is_empty(),
            "illegal result must name the failing cells"
        );
    }
}

#[test]
fn high_density_case_is_still_legalized() {
    let spec = BenchmarkSpec::tiny("dense-e2e", 55).with_density(0.88);
    let mut d = benchmark::generate(&spec);
    let out = FlexAccelerator::new(FlexConfig::flex()).legalize(&mut d);
    assert!(out.result.legal, "failed: {:?}", out.result.failed);
}

#[test]
fn iccad2017_catalogue_cases_run_end_to_end_at_reduced_scale() {
    for case in iccad2017::CASES.iter().take(3) {
        let spec = iccad2017::spec(case, 0.01, 23);
        let mut d = benchmark::generate(&spec);
        let out = FlexAccelerator::new(FlexConfig::flex()).legalize(&mut d);
        assert!(
            out.result.legal,
            "{} failed: {:?}",
            case.name, out.result.failed
        );
        assert!(out.timing.speedup_vs_software >= 1.0);
    }
}

#[test]
fn work_trace_is_consistent_with_the_design_size() {
    let mut d = tiny(400);
    let n = d.num_movable();
    let legalizer = MglLegalizer::new(FlexConfig::flex().mgl_config());
    let res = legalizer.legalize(&mut d);
    let trace = res
        .trace
        .expect("trace collection enabled by the accelerator config");
    assert_eq!(trace.len(), n);
    assert!(
        trace.total_points() >= n as u64,
        "every target evaluates at least one point"
    );
    assert!(trace.preloadable_fraction() >= 0.0 && trace.preloadable_fraction() <= 1.0);
}
