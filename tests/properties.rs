//! Property-based tests (proptest) on the core data structures and invariants.

use flex::mgl::curve::{minimize_sum, DisplacementCurve};
use flex::mgl::{MglConfig, MglLegalizer, OrderingStrategy};
use flex::placement::benchmark::{generate, BenchmarkSpec};
use flex::placement::geom::{Interval, Rect};
use flex::placement::io;
use flex::placement::legality::check_legality_with;
use flex::placement::metrics::displacement_stats;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interval subtraction never produces overlapping pieces and preserves total length.
    #[test]
    fn interval_subtraction_is_consistent(a_lo in -50i64..50, a_len in 0i64..60, b_lo in -50i64..50, b_len in 0i64..60) {
        let a = Interval::new(a_lo, a_lo + a_len);
        let b = Interval::new(b_lo, b_lo + b_len);
        let pieces = a.subtract(&b);
        let total: i64 = pieces.iter().map(|p| p.len()).sum();
        prop_assert_eq!(total, a.len() - a.overlap_len(&b));
        for p in &pieces {
            prop_assert!(a.contains_interval(p));
            prop_assert!(!p.overlaps(&b));
        }
    }

    /// Rectangle intersection is commutative and contained in both operands.
    #[test]
    fn rect_intersection_properties(ax in -20i64..20, ay in -20i64..20, aw in 0i64..30, ah in 0i64..30,
                                     bx in -20i64..20, by in -20i64..20, bw in 0i64..30, bh in 0i64..30) {
        let a = Rect::from_size(ax, ay, aw, ah);
        let b = Rect::from_size(bx, by, bw, bh);
        let i1 = a.intersect(&b);
        let i2 = b.intersect(&a);
        prop_assert_eq!(i1.area().max(0), i2.area().max(0));
        if !i1.is_empty() {
            prop_assert!(a.contains_rect(&i1));
            prop_assert!(b.contains_rect(&i1));
        }
        prop_assert_eq!(a.overlap_area(&b), b.overlap_area(&a));
    }

    /// The breakpoint/slope representation of displacement curves evaluates exactly like the
    /// closed-form definition it encodes.
    #[test]
    fn displacement_curves_match_closed_forms(c in 0.0f64..40.0, g in 0.0f64..40.0, s in 0.0f64..8.0, w in 1.0f64..8.0, x in -10.0f64..50.0) {
        let left = DisplacementCurve::left_cell(c, g, s);
        let expected_left = ((x - s).min(c) - g).abs();
        prop_assert!((left.eval(x) - expected_left).abs() < 1e-9);

        let right = DisplacementCurve::right_cell(c, g, s, w);
        let expected_right = ((x + w + s).max(c) - g).abs();
        prop_assert!((right.eval(x) - expected_right).abs() < 1e-9);
    }

    /// Minimizing a sum of convex curves with the breakpoint scan matches a dense grid search.
    #[test]
    fn curve_minimization_matches_grid_search(centers in prop::collection::vec(0.0f64..30.0, 1..5), lo in 0.0f64..10.0, span in 1.0f64..20.0) {
        let curves: Vec<DisplacementCurve> = centers.iter().map(|&c| DisplacementCurve::abs(c)).collect();
        let hi = lo + span;
        let (_, v) = minimize_sum(&curves, lo, hi);
        let mut grid_best = f64::INFINITY;
        let mut x = lo;
        while x <= hi + 1e-9 {
            let total: f64 = curves.iter().map(|c| c.eval(x)).sum();
            grid_best = grid_best.min(total);
            x += 0.05;
        }
        prop_assert!(v <= grid_best + 1e-6, "scan {v} vs grid {grid_best}");
    }

    /// The text serialization of a design round-trips exactly.
    #[test]
    fn design_text_format_roundtrips(seed in 0u64..200, cells in 10usize..60) {
        let spec = BenchmarkSpec { num_cells: cells, ..BenchmarkSpec::tiny("prop-io", seed) };
        let d = generate(&spec);
        let text = io::to_text(&d);
        let back = io::from_text(&text).unwrap();
        prop_assert_eq!(d.cells, back.cells);
        prop_assert_eq!(d.blockages, back.blockages);
        prop_assert_eq!(d.num_sites_x, back.num_sites_x);
    }
}

proptest! {
    // legalization runs are comparatively expensive: keep the case count low but meaningful
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Legalizing any generated benchmark yields a legal placement: no overlaps, everything on
    /// rows/sites inside the die, parity respected — and never loses a cell.
    #[test]
    fn legalization_always_produces_legal_layouts(seed in 0u64..1000, density in 0.25f64..0.8, ordering in 0usize..3) {
        let ordering = match ordering {
            0 => OrderingStrategy::Natural,
            1 => OrderingStrategy::SizeDescending,
            _ => OrderingStrategy::SlidingWindowDensity,
        };
        let spec = BenchmarkSpec {
            num_cells: 150,
            ..BenchmarkSpec::tiny("prop-legal", seed)
        }.with_density(density);
        let mut d = generate(&spec);
        let gx_before: Vec<(f64, f64)> = d.cells.iter().map(|c| (c.gx, c.gy)).collect();
        let cfg = MglConfig { ordering, ..MglConfig::flex() };
        let res = MglLegalizer::new(cfg).legalize(&mut d);
        prop_assert!(res.legal, "violations with seed {seed}");
        prop_assert!(check_legality_with(&d, true).is_legal());
        // global-placement anchors must never be mutated by legalization
        for (c, (gx, gy)) in d.cells.iter().zip(gx_before.iter()) {
            prop_assert_eq!(c.gx, *gx);
            prop_assert_eq!(c.gy, *gy);
        }
        // displacement accounting is finite and self-consistent
        let stats = displacement_stats(&d);
        prop_assert!(stats.average.is_finite());
        prop_assert!(stats.max >= stats.per_height.values().copied().fold(0.0, f64::max) / d.num_rows as f64);
    }
}
