//! Cross-engine contract tests for the unified `Legalizer` API: every `EngineKind` runs
//! through `Box<dyn Legalizer>` on the same design, and each `LegalizeReport` must be
//! internally consistent — `legal` means a placement the independent checker accepts with
//! zero overlaps, the displacement summary must be coherent (avg ≤ max, total bounded), the
//! placement counters must account for every movable cell, and the serial and parallel MGL
//! engines must produce cell-for-cell identical placements.

use flex::core::config::FlexConfig;
use flex::core::session::{EngineKind, FlexSession};
use flex::mgl::OrderingStrategy;
use flex::placement::benchmark::{generate, BenchmarkSpec};
use flex::placement::legality::check_legality_with;
use flex::placement::Design;

fn positions(d: &Design) -> Vec<(i64, i64)> {
    d.cells
        .iter()
        .filter(|c| !c.fixed)
        .map(|c| (c.x, c.y))
        .collect()
}

#[test]
fn every_engine_report_is_internally_consistent() {
    let design = generate(&BenchmarkSpec::tiny("contract", 77));
    let n = design.num_movable();
    let runs = FlexSession::new(design)
        .with_config(FlexConfig::flex().with_host_threads(2))
        .all_engines()
        .run();
    assert_eq!(runs.len(), EngineKind::all().len());

    for run in &runs {
        let name = run.kind.name();
        let r = &run.report;
        assert_eq!(r.engine, name, "{name}: report names a different engine");
        assert_eq!(r.cells, n, "{name}: cell count");

        // legality: the report's verdict must match the independent checker, and a legal
        // report implies zero overlap violations and no failed cells
        let check = check_legality_with(&run.design, true);
        assert_eq!(r.legal, check.is_legal(), "{name}: legality verdict");
        assert!(
            r.legal,
            "{name}: expected a legal placement on the tiny case"
        );
        assert!(check.violations.is_empty(), "{name}: overlaps remained");
        assert!(r.failed.is_empty(), "{name}: failed cells in a legal run");

        // displacement summary coherence
        let d = &r.displacement;
        assert!(d.average.is_finite() && d.max.is_finite() && d.total.is_finite());
        assert!(d.average >= 0.0 && d.max >= 0.0 && d.total >= 0.0, "{name}");
        assert!(
            d.average <= d.max + 1e-9,
            "{name}: avg {} > max {}",
            d.average,
            d.max
        );
        assert!(
            d.max <= d.total + 1e-9,
            "{name}: max {} > total {}",
            d.max,
            d.total
        );
        assert!(
            d.total <= d.max * n as f64 + 1e-9,
            "{name}: total exceeds n*max"
        );

        // the accounting invariant: every movable cell lands in exactly one bucket
        assert_eq!(
            r.placed_in_region + r.fallback_placed + r.failed.len(),
            n,
            "{name}: placement counters do not account for every cell"
        );
        assert_eq!(r.placed_total(), n, "{name}: placed_total");

        // runtime: something was measured, and the reported runtime picks the estimate
        assert!(
            r.runtime.wall.as_nanos() > 0,
            "{name}: no wall clock measured"
        );
        assert_eq!(
            r.runtime.reported(),
            r.runtime.estimated.unwrap_or(r.runtime.wall),
            "{name}: reported runtime"
        );
        assert!(r.seconds() > 0.0, "{name}: reported seconds");
    }
}

#[test]
fn serial_and_parallel_mgl_agree_cell_for_cell_through_the_trait() {
    // a static ordering row of the equivalence matrix; the dynamic FLEX default has its own
    // dedicated test below now that it runs the real speculative path
    let cfg = FlexConfig {
        ordering: OrderingStrategy::SizeDescending,
        ..FlexConfig::flex().with_host_threads(4)
    };
    let design = generate(&BenchmarkSpec::tiny("contract-eq", 78).with_density(0.7));
    let session = FlexSession::new(design).with_config(cfg);
    let serial = session.run_engine(EngineKind::MglSerial);
    let parallel = session.run_engine(EngineKind::MglParallel);

    assert_eq!(
        positions(&serial.design),
        positions(&parallel.design),
        "parallel MGL must reproduce the serial placement exactly"
    );
    assert_eq!(serial.report.legal, parallel.report.legal);
    assert_eq!(
        serial.report.placed_in_region,
        parallel.report.placed_in_region
    );
    assert_eq!(
        serial.report.fallback_placed,
        parallel.report.fallback_placed
    );
    assert_eq!(serial.report.failed, parallel.report.failed);
    assert_eq!(
        serial.report.displacement.average,
        parallel.report.displacement.average
    );
    assert_eq!(
        serial.report.displacement.max,
        parallel.report.displacement.max
    );
    assert_eq!(
        serial.report.displacement.total,
        parallel.report.displacement.total
    );
}

#[test]
fn dynamic_ordering_runs_the_parallel_path_and_matches_serial_through_the_trait() {
    // the FLEX **default** configuration (sliding-window density ordering) previously forced
    // `EngineKind::MglParallel` to degrade to fully-serial execution, so this equivalence was
    // impossible to state; it now runs the peeked-prefix speculative path — pipelined and not —
    // and must reproduce the serial dynamic-order engine cell for cell
    for pipelined in [true, false] {
        let cfg = FlexConfig::flex()
            .with_host_threads(4)
            .with_host_pipelining(pipelined);
        let design = generate(&BenchmarkSpec::tiny("contract-dynamic", 82).with_density(0.65));
        let session = FlexSession::new(design).with_config(cfg);
        let serial = session.run_engine(EngineKind::MglSerial);
        let parallel = session.run_engine(EngineKind::MglParallel);

        assert_eq!(
            positions(&serial.design),
            positions(&parallel.design),
            "dynamic-order parallel MGL must reproduce the serial placement (pipelined {pipelined})"
        );
        assert_eq!(serial.report.legal, parallel.report.legal);
        assert_eq!(
            serial.report.displacement.average,
            parallel.report.displacement.average
        );
        assert_eq!(
            serial.report.displacement.total,
            parallel.report.displacement.total
        );
        let shards = &parallel
            .report
            .details::<flex::mgl::ParallelLegalizeResult>()
            .expect("parallel details")
            .shards;
        assert!(
            shards.speculated > 0,
            "the dynamic order must be speculated, not serialized"
        );
        assert_eq!(shards.order_invalidated, 0, "no orphaned speculations");
        if !pipelined {
            assert_eq!(shards.pipelined_batches, 0);
        }
    }
}

#[test]
fn serial_and_parallel_agree_through_the_scratch_path_for_every_fop_config() {
    // Both engines now run FOP through the arena-allocated scratch kernel (one scratch for
    // the serial engine, one per worker thread in the parallel engine). The equivalence must
    // hold for every shift-algorithm × FOP-variant combination, since each takes a different
    // route through the scratch buffers.
    use flex::mgl::api::Legalizer;
    use flex::mgl::config::{FopVariant, MglConfig, ShiftAlgorithm};
    use flex::mgl::{MglLegalizer, ParallelMglLegalizer};

    for shift in [ShiftAlgorithm::Original, ShiftAlgorithm::Sacs] {
        for fop in [FopVariant::Original, FopVariant::Reorganized] {
            let cfg = MglConfig {
                shift,
                fop,
                ordering: OrderingStrategy::SizeDescending,
                ..MglConfig::default()
            };
            let spec = BenchmarkSpec::tiny("contract-scratch", 81).with_density(0.7);
            let mut d_ser = generate(&spec);
            let mut d_par = generate(&spec);
            let serial: Box<dyn Legalizer> = Box::new(MglLegalizer::new(cfg.clone()));
            let parallel: Box<dyn Legalizer> = Box::new(ParallelMglLegalizer::new(4, cfg));
            let rs = serial.legalize(&mut d_ser);
            let rp = parallel.legalize(&mut d_par);
            assert!(rs.legal && rp.legal, "shift {shift:?} fop {fop:?}");
            assert_eq!(
                positions(&d_ser),
                positions(&d_par),
                "shift {shift:?} fop {fop:?}: parallel placement diverged from serial"
            );
            assert_eq!(rs.displacement.average, rp.displacement.average);
            assert_eq!(rs.placed_in_region, rp.placed_in_region);
            assert_eq!(rs.fallback_placed, rp.fallback_placed);
        }
    }
}

#[test]
fn engine_sweeps_are_one_liners_over_engine_kind_all() {
    // the ISSUE's motivating use case: iterate every backend through one seam
    let cfg = FlexConfig::flex();
    let names: Vec<&str> = EngineKind::all()
        .into_iter()
        .map(|kind| {
            let mut d = generate(&BenchmarkSpec::tiny("contract-sweep", 79));
            let report = kind.build(&cfg).legalize(&mut d);
            assert!(report.legal, "{} failed the sweep", kind.name());
            report.engine
        })
        .collect();
    assert_eq!(
        names,
        vec![
            "mgl-serial",
            "mgl-parallel",
            "tcad22-cpu",
            "date22-cpu-gpu",
            "ispd25-analytical",
            "flex"
        ]
    );
}

#[test]
fn reports_preserve_engine_specific_details() {
    // no information from the legacy result structs is lost: each engine's full result
    // travels in the report's typed extension
    let design = generate(&BenchmarkSpec::tiny("contract-details", 80));
    let session = FlexSession::new(design).with_config(FlexConfig::flex().with_host_threads(2));

    let run = session.run_engine(EngineKind::MglSerial);
    assert!(run.report.details::<flex::mgl::LegalizeResult>().is_some());

    let run = session.run_engine(EngineKind::MglParallel);
    let par = run
        .report
        .details::<flex::mgl::ParallelLegalizeResult>()
        .expect("parallel details");
    assert!(par.shards.bands >= 1);

    let run = session.run_engine(EngineKind::CpuMgl);
    let cpu = run
        .report
        .details::<flex::baselines::cpu::CpuLegalizerResult>()
        .expect("cpu details");
    assert!(cpu.batches > 0 && cpu.avg_batch_size >= 1.0);

    let run = session.run_engine(EngineKind::CpuGpu);
    let gpu = run
        .report
        .details::<flex::baselines::cpu_gpu::CpuGpuResult>()
        .expect("cpu-gpu details");
    assert!(gpu.batches > 0);
    assert_eq!(
        run.report.runtime.estimated,
        Some(gpu.estimated_runtime),
        "the modeled runtime must be the one the report is compared on"
    );

    let run = session.run_engine(EngineKind::Analytical);
    let ana = run
        .report
        .details::<flex::baselines::analytical::AnalyticalResult>()
        .expect("analytical details");
    assert!(ana.iterations >= 1);

    let run = session.run_engine(EngineKind::Flex);
    let flex_out = run
        .report
        .details::<flex::core::accelerator::FlexOutcome>()
        .expect("flex details");
    assert!(flex_out.timing.fpga_cycles > 0);
    assert!(
        run.report.trace.is_some(),
        "the FLEX config collects a trace"
    );
}
