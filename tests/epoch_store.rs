//! Differential suite for the epoch-tagged copy-on-write cell store: the COW overlay
//! replay must be indistinguishable from the clone-based shadow design it replaced.
//!
//! The test drives the *serial* per-cell placement step batch by batch, recording every
//! committed write into an [`EpochCellStore`] and sealing one epoch per batch — exactly
//! what the pipelined parallel engine does — while also retaining a full `Design` clone
//! at each seal (the pre-PR shadow mechanism). Every surviving `(snapshot, clone)` pair
//! must then agree cell for cell, and the snapshot's obstacle query must reproduce the
//! candidates a `LegalizedIndex` built from the clone yields, in the same order (the
//! order feeds float summations, so it is part of the bit-exactness contract). Epoch
//! promotion runs mid-flight to prove folding retired overlays into the base columns
//! never perturbs later snapshots.

use flex::mgl::legalize::{place_target_with, PlacedBy};
use flex::mgl::region::LegalizedIndex;
use flex::mgl::{FopOpStats, FopScratch, MglConfig};
use flex::placement::benchmark::{generate, BenchmarkSpec};
use flex::placement::segment::SegmentMap;
use flex::placement::store::{CellState, EpochCellStore, StoreSnapshot};
use flex::placement::Design;
use proptest::prelude::*;

const BATCH: usize = 8;

/// Record the design writes of one placement outcome into the store, the way the
/// pipelined engine does after each serial commit.
fn record_outcome(
    store: &EpochCellStore,
    design: &Design,
    target: flex::placement::CellId,
    placed: PlacedBy,
    moves: &[flex::placement::CellId],
) {
    match placed {
        PlacedBy::None => {}
        _ => {
            for &id in moves {
                store.record(id, CellState::of(design.cell(id)));
            }
            store.record(target, CellState::of(design.cell(target)));
        }
    }
}

/// Assert one epoch snapshot is indistinguishable from the design clone taken at the
/// same seal point.
fn assert_snapshot_matches_clone(snapshot: &StoreSnapshot, clone: &Design, epoch: u32) {
    assert_eq!(snapshot.num_rows(), clone.num_rows);
    assert_eq!(snapshot.num_sites_x(), clone.num_sites_x);
    for cell in &clone.cells {
        let got = snapshot.cell(cell.id);
        assert_eq!(
            (
                got.x,
                got.y,
                got.legalized,
                got.width,
                got.height,
                got.fixed
            ),
            (
                cell.x,
                cell.y,
                cell.legalized,
                cell.width,
                cell.height,
                cell.fixed
            ),
            "cell {:?} diverged at epoch {epoch}",
            cell.id
        );
    }
    // the obstacle query must reproduce the clone-built index's candidates in the same
    // order — that order feeds float summations downstream
    let index = LegalizedIndex::build_serial(clone);
    let windows = [
        (0, clone.num_rows),
        (0, clone.num_rows / 2 + 1),
        (clone.num_rows / 3, 2 * clone.num_rows / 3 + 1),
    ];
    for (y_lo, y_hi) in windows {
        for exclude in clone.movable_ids().iter().take(3).copied() {
            let expected: Vec<_> = index
                .candidates(y_lo, y_hi)
                .into_iter()
                .filter(|&id| id != exclude)
                .map(|id| {
                    let c = clone.cell(id);
                    (c.id, c.x, c.y, c.width, c.height)
                })
                .collect();
            let got: Vec<_> = snapshot
                .obstacles(y_lo, y_hi, exclude)
                .into_iter()
                .map(|c| (c.id, c.x, c.y, c.width, c.height))
                .collect();
            assert_eq!(
                got, expected,
                "obstacles diverged at epoch {epoch} window [{y_lo}, {y_hi})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// COW epoch replay ≡ clone-based shadow, under mid-run promotion.
    #[test]
    fn epoch_snapshots_match_design_clones(seed in 0u64..10_000, density in 0.35f64..0.7) {
        let spec = BenchmarkSpec {
            num_cells: 90,
            ..BenchmarkSpec::tiny("epoch-diff", seed)
        }
        .with_density(density);
        let cfg = MglConfig::default();

        let mut design = generate(&spec);
        design.pre_move();
        let segmap = SegmentMap::build(&design);
        let mut index = LegalizedIndex::build(&design);
        let store = EpochCellStore::capture(&design);

        // epoch 0 (post-capture, nothing sealed) must already match the live design
        assert_snapshot_matches_clone(&store.snapshot(), &design, 0);

        let targets = flex::mgl::ordering::size_descending_order(&design, &design.movable_ids());
        let mut op_stats = FopOpStats::default();
        let mut scratch = FopScratch::new();
        let mut pairs: Vec<(StoreSnapshot, Design)> = Vec::new();

        for batch in targets.chunks(BATCH) {
            for &target in batch {
                let outcome =
                    place_target_with(&mut design, &segmap, &mut index, &cfg, target, &mut op_stats, &mut scratch);
                let moves: Vec<_> = outcome
                    .plan
                    .as_ref()
                    .map(|p| p.moves.iter().map(|&(id, _)| id).collect())
                    .unwrap_or_default();
                record_outcome(&store, &design, target, outcome.placed, &moves);
            }
            let epoch = store.seal_epoch();
            pairs.push((store.snapshot(), design.clone()));
            // exercise promotion while snapshots of later epochs stay live: retire
            // everything more than two epochs old and drop the invalidated pairs
            if epoch >= 3 {
                store.promote_through(epoch - 2);
                pairs.retain(|(snap, _)| snap.epoch() >= store.promoted_epoch());
            }
        }

        prop_assert!(!pairs.is_empty(), "no epochs sealed at seed {seed}");
        for (snapshot, clone) in &pairs {
            assert_snapshot_matches_clone(snapshot, clone, snapshot.epoch());
        }
    }
}
