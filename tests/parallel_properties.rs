//! Property-based tests for the parallel region-sharded MGL engine: legality of every
//! legalizer on random benchmarks, and determinism of serial vs. parallel legalization
//! across the full {pipeline depth} × {ordering strategy} × {thread count} matrix —
//! including the FLEX default dynamic (sliding-window density) ordering and pipeline
//! depths above 2, where several speculation batches are in flight against distinct
//! epoch snapshots of the copy-on-write cell store.

use flex::baselines::cpu::CpuLegalizer;
use flex::mgl::parallel::ParallelMglLegalizer;
use flex::mgl::{MglConfig, MglLegalizer, OrderingStrategy};
use flex::placement::benchmark::{generate, BenchmarkSpec};
use flex::placement::legality::check_legality_with;
use flex::placement::Design;
use proptest::prelude::*;

fn static_cfg() -> MglConfig {
    MglConfig {
        ordering: OrderingStrategy::SizeDescending,
        ..MglConfig::default()
    }
}

fn positions(d: &Design) -> Vec<(i64, i64)> {
    d.cells
        .iter()
        .filter(|c| !c.fixed)
        .map(|c| (c.x, c.y))
        .collect()
}

proptest! {
    // each case runs several complete legalizations: keep the count low but meaningful
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every legalizer produces a placement that passes the full legality check on random
    /// benchmark specs (densities spanning easy to crowded).
    #[test]
    fn every_legalizer_output_is_legal(seed in 0u64..10_000, density in 0.3f64..0.75, threads in 1usize..6) {
        let spec = BenchmarkSpec {
            num_cells: 120,
            ..BenchmarkSpec::tiny("prop-par-legal", seed)
        }
        .with_density(density);

        let mut d_serial = generate(&spec);
        let serial = MglLegalizer::new(static_cfg()).legalize(&mut d_serial);
        prop_assert!(serial.legal, "serial illegal at seed {seed}");
        prop_assert!(check_legality_with(&d_serial, true).is_legal());

        let mut d_par = generate(&spec);
        let par = ParallelMglLegalizer::new(threads, static_cfg()).legalize(&mut d_par);
        prop_assert!(par.result.legal, "parallel illegal at seed {seed}");
        prop_assert!(check_legality_with(&d_par, true).is_legal());

        let mut d_cpu = generate(&spec);
        let cpu = CpuLegalizer::new(threads).legalize(&mut d_cpu);
        prop_assert!(cpu.legal, "cpu baseline illegal at seed {seed}");
        prop_assert!(check_legality_with(&d_cpu, true).is_legal());
    }

    /// Determinism under sharding: serial and parallel MGL produce identical quality numbers
    /// (the engine is placement-identical to the serial legalizer by construction), and the
    /// thread count never changes the result.
    #[test]
    fn serial_and_parallel_mgl_are_identical(seed in 0u64..10_000, density in 0.3f64..0.8) {
        let spec = BenchmarkSpec {
            num_cells: 120,
            ..BenchmarkSpec::tiny("prop-par-det", seed)
        }
        .with_density(density);

        let mut d_serial = generate(&spec);
        let serial = MglLegalizer::new(static_cfg()).legalize(&mut d_serial);

        for threads in [1usize, 4] {
            let mut d_par = generate(&spec);
            let par = ParallelMglLegalizer::new(threads, static_cfg()).legalize(&mut d_par);
            prop_assert_eq!(par.result.legal, serial.legal);
            prop_assert!(
                (par.result.average_displacement - serial.average_displacement).abs() < 1e-9,
                "S_am diverged at seed {seed} threads {threads}: {} vs {}",
                par.result.average_displacement,
                serial.average_displacement
            );
            prop_assert!(
                (par.result.max_displacement - serial.max_displacement).abs() < 1e-9
            );
            prop_assert_eq!(par.result.placed_in_region, serial.placed_in_region);
            prop_assert_eq!(par.result.fallback_placed, serial.fallback_placed);
            prop_assert_eq!(
                positions(&d_serial),
                positions(&d_par),
                "placements diverged at seed {seed}"
            );
        }
    }

    /// The full engine matrix: {pipeline depth 1–4} × {natural, size-descending,
    /// sliding-window-density} orderings × thread counts, asserting **cell-for-cell**
    /// equality with the serial legalizer run under the same configuration. Depth 1 is
    /// the barrier engine (no speculation across batches); depth 2 is the classic
    /// double-buffered pipeline; depths 3 and 4 keep several batches speculating against
    /// distinct epoch snapshots, so these rows prove the per-slot write-rect staleness
    /// guard and the epoch store's promotion logic preserve serial bit-exactness.
    #[test]
    fn pipeline_depth_ordering_thread_matrix_is_serial_identical(
        seed in 0u64..10_000,
        density in 0.35f64..0.75,
        threads in 1usize..6,
    ) {
        let spec = BenchmarkSpec {
            num_cells: 110,
            ..BenchmarkSpec::tiny("prop-par-matrix", seed)
        }
        .with_density(density);

        for ordering in [
            OrderingStrategy::Natural,
            OrderingStrategy::SizeDescending,
            OrderingStrategy::SlidingWindowDensity,
        ] {
            let cfg = MglConfig {
                ordering,
                ..MglConfig::default()
            };
            let mut d_serial = generate(&spec);
            let serial = MglLegalizer::new(cfg.clone()).legalize(&mut d_serial);
            let serial_pos = positions(&d_serial);

            for depth in [1usize, 2, 3, 4] {
                let mut d_par = generate(&spec);
                let par = ParallelMglLegalizer::new(threads, cfg.clone())
                    .with_pipeline_depth(depth)
                    .legalize(&mut d_par);
                prop_assert_eq!(par.result.legal, serial.legal);
                prop_assert_eq!(
                    &serial_pos,
                    &positions(&d_par),
                    "placements diverged: seed {} ordering {:?} depth {} threads {}",
                    seed,
                    ordering,
                    depth,
                    threads
                );
                prop_assert_eq!(par.result.placed_in_region, serial.placed_in_region);
                prop_assert_eq!(par.result.fallback_placed, serial.fallback_placed);
                prop_assert_eq!(&par.result.failed, &serial.failed);
                prop_assert_eq!(
                    par.result.average_displacement.to_bits(),
                    serial.average_displacement.to_bits(),
                    "S_am must be byte-identical (seed {seed} ordering {ordering:?} depth {depth})"
                );
                prop_assert_eq!(
                    par.shards.order_invalidated,
                    0,
                    "dynamic order diverged from the peek (seed {seed} ordering {ordering:?})"
                );
                if depth == 1 {
                    prop_assert_eq!(par.shards.pipelined_batches, 0);
                    prop_assert_eq!(par.shards.cross_batch_invalidated, 0);
                }
            }
        }
    }
}
