//! NaN / extreme-value robustness of every engine behind the unified `Legalizer` trait.
//!
//! A degenerate global placement can hand the legalizers non-finite or astronomically
//! large desired positions (diverged analytical solves, uninitialized nets). None of the
//! six engines may panic on such input: the float comparators use `f64::total_cmp`, the
//! slope-balance debug assertions use a relative tolerance that ignores non-finite sums,
//! and the pre-move step saturates positions onto the die. These tests drive every
//! `EngineKind` — including the epoch-pipelined parallel host engine at depth 3 — over
//! designs whose movable cells have NaN and ±1e300 / ±1e9 desired coordinates.

use flex::core::config::FlexConfig;
use flex::core::session::EngineKind;
use flex::placement::benchmark::{generate, BenchmarkSpec};
use proptest::prelude::*;

/// Palette of hostile desired coordinates, indexed by a proptest-chosen offset.
const HOSTILE: [f64; 6] = [f64::NAN, 1e300, -1e300, 1e9, -1e9, -0.0];

proptest! {
    // every case runs six complete legalizations; keep the count small
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// All six engines complete without panicking when a subset of movable cells carries
    /// NaN or extreme desired positions, and every report still accounts for each
    /// movable cell exactly once.
    #[test]
    fn engines_survive_hostile_desired_positions(
        seed in 0u64..10_000,
        stride in 2usize..5,
        palette_offset in 0usize..HOSTILE.len(),
    ) {
        let spec = BenchmarkSpec {
            num_cells: 60,
            ..BenchmarkSpec::tiny("nan-robust", seed)
        };
        let base = {
            let mut d = generate(&spec);
            let mut k = palette_offset;
            for cell in d.cells.iter_mut().filter(|c| !c.fixed) {
                if (cell.id.0 as usize).is_multiple_of(stride) {
                    cell.gx = HOSTILE[k % HOSTILE.len()];
                    cell.gy = HOSTILE[(k + 1) % HOSTILE.len()];
                    k += 1;
                }
            }
            d
        };

        // depth-3 pipelining on two host threads exercises the epoch store under the
        // same hostile input as the serial engines
        let cfg = FlexConfig::flex()
            .with_host_threads(2)
            .with_host_pipeline_depth(3);

        for kind in EngineKind::all() {
            let mut d = base.clone();
            let report = kind.build(&cfg).legalize(&mut d);
            prop_assert_eq!(
                report.cells,
                base.num_movable(),
                "{} lost track of cells on hostile input (seed {})",
                kind.name(),
                seed
            );
            // positions must have saturated onto the die rather than wrapping
            for cell in d.cells.iter().filter(|c| !c.fixed) {
                prop_assert!(
                    cell.x.abs() <= d.num_sites_x + cell.width
                        && cell.y.abs() <= d.num_rows + cell.height,
                    "{} left cell {:?} off-die at ({}, {}) (seed {})",
                    kind.name(),
                    cell.id,
                    cell.x,
                    cell.y,
                    seed
                );
            }
        }
    }
}
