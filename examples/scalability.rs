//! Reproduce the scalability comparison of Sec. 5.4 / Fig. 2(a): multi-threaded CPU legalization
//! saturates around 8 threads, while FLEX's insertion-point-level parallelism scales with the
//! number of FOP PEs at minimal synchronization cost.
//!
//! Both sweeps are `EngineKind` one-liners over the unified API; the engine-specific numbers
//! (batch sizes, BRAM counts) come out of the reports' typed `details`.
//!
//! Run with `cargo run --release --example scalability`.

use flex::baselines::cpu::CpuLegalizerResult;
use flex::core::accelerator::FlexOutcome;
use flex::core::config::FlexConfig;
use flex::core::session::EngineKind;
use flex::placement::benchmark::{generate, BenchmarkSpec};

fn main() {
    let spec = BenchmarkSpec::medium("scalability", 5).scaled(0.5);

    println!("multi-threaded CPU legalizer (TCAD'22 style region-level parallelism):");
    let mut base_time = None;
    for threads in [1usize, 2, 4, 8, 10] {
        let mut d = generate(&spec);
        let report = EngineKind::CpuMgl
            .build(&FlexConfig::flex().with_host_threads(threads))
            .legalize(&mut d);
        assert!(report.legal);
        let t = report.seconds();
        let speedup = base_time.map(|b: f64| b / t).unwrap_or(1.0);
        if base_time.is_none() {
            base_time = Some(t);
        }
        let res: &CpuLegalizerResult = report.details().expect("cpu details");
        println!(
            "  {:>2} threads: {:>8.3} s   speedup {:>5.2}x   avg batch {:>5.2} regions",
            threads, t, speedup, res.avg_batch_size
        );
    }

    println!();
    println!("FLEX FOP-PE scaling (insertion-point-level parallelism):");
    let mut base_fpga = None;
    for pes in [1u64, 2, 3, 4] {
        let mut d = generate(&spec);
        let report = EngineKind::Flex
            .build(&FlexConfig::flex().with_pes(pes))
            .legalize(&mut d);
        assert!(report.legal);
        let out: &FlexOutcome = report.details().expect("flex details");
        let t = out.timing.fpga_time.as_secs_f64();
        let speedup = base_fpga.map(|b: f64| b / t).unwrap_or(1.0);
        if base_fpga.is_none() {
            base_fpga = Some(t);
        }
        println!(
            "  {:>2} FOP PEs: fpga-side {:>8.3} ms   speedup {:>5.2}x   BRAMs {:>4}",
            pes,
            t * 1e3,
            speedup,
            out.resources.brams
        );
    }
}
