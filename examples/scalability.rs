//! Reproduce the scalability comparison of Sec. 5.4 / Fig. 2(a): multi-threaded CPU legalization
//! saturates around 8 threads, while FLEX's insertion-point-level parallelism scales with the
//! number of FOP PEs at minimal synchronization cost.
//!
//! Run with `cargo run --release --example scalability`.

use flex::baselines::cpu::CpuLegalizer;
use flex::core::accelerator::FlexAccelerator;
use flex::core::config::FlexConfig;
use flex::placement::benchmark::{generate, BenchmarkSpec};

fn main() {
    let spec = BenchmarkSpec::medium("scalability", 5).scaled(0.5);

    println!("multi-threaded CPU legalizer (TCAD'22 style region-level parallelism):");
    let mut base_time = None;
    for threads in [1usize, 2, 4, 8, 10] {
        let mut d = generate(&spec);
        let res = CpuLegalizer::new(threads).legalize(&mut d);
        assert!(res.legal);
        let t = res.seconds();
        let speedup = base_time.map(|b: f64| b / t).unwrap_or(1.0);
        if base_time.is_none() {
            base_time = Some(t);
        }
        println!(
            "  {:>2} threads: {:>8.3} s   speedup {:>5.2}x   avg batch {:>5.2} regions",
            threads, t, speedup, res.avg_batch_size
        );
    }

    println!();
    println!("FLEX FOP-PE scaling (insertion-point-level parallelism):");
    let mut base_fpga = None;
    for pes in [1u64, 2, 3, 4] {
        let mut d = generate(&spec);
        let out = FlexAccelerator::new(FlexConfig::flex().with_pes(pes)).legalize(&mut d);
        assert!(out.result.legal);
        let t = out.timing.fpga_time.as_secs_f64();
        let speedup = base_fpga.map(|b: f64| b / t).unwrap_or(1.0);
        if base_fpga.is_none() {
            base_fpga = Some(t);
        }
        println!(
            "  {:>2} FOP PEs: fpga-side {:>8.3} ms   speedup {:>5.2}x   BRAMs {:>4}",
            pes,
            t * 1e3,
            speedup,
            out.resources.brams
        );
    }
}
