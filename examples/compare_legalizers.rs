//! Compare all four legalizers of the paper on one ICCAD2017-style case and print a
//! Table-1-style row — through the unified engine API: one [`FlexSession`], one
//! [`EngineKind`] per column, one uniform `LegalizeReport` shape for every engine.
//!
//! Run with `cargo run --release --example compare_legalizers [-- <case-name> <scale>]`,
//! e.g. `cargo run --release --example compare_legalizers -- fft_a_md2 0.05`.

use flex::core::config::FlexConfig;
use flex::core::session::{EngineKind, FlexSession};
use flex::placement::benchmark::generate;
use flex::placement::iccad2017;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let case_name = args.get(1).map(String::as_str).unwrap_or("fft_a_md2");
    let scale: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.03);

    let case = iccad2017::case(case_name).unwrap_or_else(|| {
        eprintln!("unknown case `{case_name}`; available cases:");
        for c in iccad2017::CASES {
            eprintln!("  {}", c.name);
        }
        std::process::exit(1);
    });
    let spec = iccad2017::spec(case, scale, 7);
    println!(
        "case {} at scale {:.2}: {} cells, target density {:.1}%",
        case.name,
        scale,
        spec.num_cells,
        spec.density * 100.0
    );

    // one session: the design goes in once, every engine legalizes its own copy (the session
    // config defaults to FlexConfig::flex(); only the CPU baseline's thread count is overridden)
    let runs = FlexSession::new(generate(&spec))
        .engine_with(EngineKind::CpuMgl, FlexConfig::flex().with_host_threads(8))
        .engine(EngineKind::CpuGpu)
        .engine(EngineKind::Analytical)
        .engine(EngineKind::Flex)
        .run();

    println!();
    println!(
        "{:<18} {:>8} {:>12} {:>8}",
        "legalizer", "AveDis", "Time(s)", "legal"
    );
    for run in &runs {
        println!(
            "{:<18} {:>8.3} {:>12.4} {:>8}",
            run.kind.name(),
            run.report.displacement.average,
            run.report.seconds(),
            run.report.legal
        );
    }

    let time_of = |kind: EngineKind| -> f64 {
        runs.iter()
            .find(|r| r.kind == kind)
            .expect("engine selected above")
            .report
            .seconds()
    };
    let flex_time = time_of(EngineKind::Flex);
    println!();
    println!(
        "Acc(T) = {:.1}x   Acc(D) = {:.1}x   Acc(I) = {:.1}x",
        time_of(EngineKind::CpuMgl) / flex_time,
        time_of(EngineKind::CpuGpu) / flex_time,
        time_of(EngineKind::Analytical) / flex_time
    );
    println!(
        "paper reference for {}: Acc(T) = {:.1}x, Acc(D) = {:.1}x, Acc(I) = {:.1}x",
        case.name,
        case.acc_t(),
        case.acc_d(),
        case.acc_i()
    );
}
