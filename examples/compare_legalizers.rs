//! Compare all four legalizers of the paper on one ICCAD2017-style case and print a
//! Table-1-style row: the multi-threaded CPU MGL (TCAD'22), the CPU-GPU legalizer (DATE'22),
//! the analytical legalizer (ISPD'25), and FLEX.
//!
//! Run with `cargo run --release --example compare_legalizers [-- <case-name> <scale>]`,
//! e.g. `cargo run --release --example compare_legalizers -- fft_a_md2 0.05`.

use flex::baselines::analytical::AnalyticalLegalizer;
use flex::baselines::cpu::CpuLegalizer;
use flex::baselines::cpu_gpu::CpuGpuLegalizer;
use flex::core::accelerator::FlexAccelerator;
use flex::core::config::FlexConfig;
use flex::placement::benchmark::generate;
use flex::placement::iccad2017;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let case_name = args.get(1).map(String::as_str).unwrap_or("fft_a_md2");
    let scale: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.03);

    let case = iccad2017::case(case_name).unwrap_or_else(|| {
        eprintln!("unknown case `{case_name}`; available cases:");
        for c in iccad2017::CASES {
            eprintln!("  {}", c.name);
        }
        std::process::exit(1);
    });
    let spec = iccad2017::spec(case, scale, 7);
    println!(
        "case {} at scale {:.2}: {} cells, target density {:.1}%",
        case.name,
        scale,
        spec.num_cells,
        spec.density * 100.0
    );

    // TCAD'22: 8-thread CPU MGL
    let mut d = generate(&spec);
    let tcad = CpuLegalizer::new(8).legalize(&mut d);

    // DATE'22: CPU-GPU
    let mut d = generate(&spec);
    let date = CpuGpuLegalizer::default().legalize(&mut d);

    // ISPD'25: analytical
    let mut d = generate(&spec);
    let ispd = AnalyticalLegalizer::default().legalize(&mut d);

    // FLEX
    let mut d = generate(&spec);
    let flex = FlexAccelerator::new(FlexConfig::flex()).legalize(&mut d);

    println!();
    println!(
        "{:<14} {:>8} {:>12} {:>8}",
        "legalizer", "AveDis", "Time(s)", "legal"
    );
    println!(
        "{:<14} {:>8.3} {:>12.4} {:>8}",
        "TCAD'22-MGL",
        tcad.average_displacement,
        tcad.seconds(),
        tcad.legal
    );
    println!(
        "{:<14} {:>8.3} {:>12.4} {:>8}",
        "DATE'22",
        date.average_displacement,
        date.seconds(),
        date.legal
    );
    println!(
        "{:<14} {:>8.3} {:>12.4} {:>8}",
        "ISPD'25",
        ispd.average_displacement,
        ispd.estimated_gpu_runtime.as_secs_f64(),
        ispd.legal
    );
    println!(
        "{:<14} {:>8.3} {:>12.4} {:>8}",
        "FLEX (ours)",
        flex.average_displacement(),
        flex.seconds(),
        flex.result.legal
    );
    println!();
    println!(
        "Acc(T) = {:.1}x   Acc(D) = {:.1}x   Acc(I) = {:.1}x",
        tcad.seconds() / flex.seconds(),
        date.seconds() / flex.seconds(),
        ispd.estimated_gpu_runtime.as_secs_f64() / flex.seconds()
    );
    println!(
        "paper reference for {}: Acc(T) = {:.1}x, Acc(D) = {:.1}x, Acc(I) = {:.1}x",
        case.name,
        case.acc_t(),
        case.acc_d(),
        case.acc_i()
    );
}
