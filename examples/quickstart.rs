//! Quickstart: generate a small mixed-cell-height design, legalize it with FLEX through the
//! unified `Legalizer` API, and print the quality and timing summary.
//!
//! Run with `cargo run --release --example quickstart`.

use flex::core::accelerator::FlexOutcome;
use flex::core::config::FlexConfig;
use flex::core::session::EngineKind;
use flex::placement::benchmark::{generate, BenchmarkSpec};
use flex::placement::legality::check_legality_with;

fn main() {
    // 1. a seeded synthetic benchmark (≈300 mixed-height cells, 55% density)
    let spec = BenchmarkSpec::tiny("quickstart", 42);
    let mut design = generate(&spec);
    println!(
        "design `{}`: {} movable cells, die {}x{} sites/rows, density {:.1}%",
        design.name,
        design.num_movable(),
        design.num_sites_x,
        design.num_rows,
        design.density() * 100.0
    );

    // 2. build the engine through the factory (any other EngineKind plugs in the same way)
    //    and legalize with the full FLEX configuration (2 FOP PEs, SACS, multi-granularity)
    let engine = EngineKind::Flex.build(&FlexConfig::flex());
    let report = engine.legalize(&mut design);

    // 3. the uniform report carries legality, displacement and the runtime split …
    println!("legal placement:        {}", report.legal);
    println!(
        "average displacement:   {:.3} rows (S_am, Eq. 2)",
        report.displacement.average
    );
    println!(
        "max displacement:       {:.3} rows",
        report.displacement.max
    );
    println!(
        "software runtime:       {:.3} ms (host-only MGL run)",
        report.runtime.wall.as_secs_f64() * 1e3
    );

    // … while the engine-specific outcome (FPGA timing model, resources) stays reachable
    // through the typed `details` extension
    let outcome: &FlexOutcome = report.details().expect("FLEX engine details");
    println!(
        "estimated FLEX runtime: {:.3} ms  ({:.2}x speedup)",
        report.seconds() * 1e3,
        outcome.timing.speedup_vs_software
    );
    println!(
        "FPGA resources:         {} LUTs, {} FFs, {} BRAMs, {} DSPs",
        outcome.resources.luts,
        outcome.resources.ffs,
        outcome.resources.brams,
        outcome.resources.dsps
    );
    assert!(
        report.legal && check_legality_with(&design, true).is_legal(),
        "quickstart must produce a legal placement"
    );
}
