//! Quickstart: generate a small mixed-cell-height design, legalize it with FLEX, and print the
//! quality and timing summary.
//!
//! Run with `cargo run --release --example quickstart`.

use flex::core::accelerator::FlexAccelerator;
use flex::core::config::FlexConfig;
use flex::placement::benchmark::{generate, BenchmarkSpec};
use flex::placement::legality::check_legality_with;
use flex::placement::metrics::displacement_stats;

fn main() {
    // 1. a seeded synthetic benchmark (≈300 mixed-height cells, 55% density)
    let spec = BenchmarkSpec::tiny("quickstart", 42);
    let mut design = generate(&spec);
    println!(
        "design `{}`: {} movable cells, die {}x{} sites/rows, density {:.1}%",
        design.name,
        design.num_movable(),
        design.num_sites_x,
        design.num_rows,
        design.density() * 100.0
    );

    // 2. legalize with the full FLEX configuration (2 FOP PEs, SACS, multi-granularity pipeline)
    let accel = FlexAccelerator::new(FlexConfig::flex());
    let outcome = accel.legalize(&mut design);

    // 3. verify and report
    let report = check_legality_with(&design, true);
    let disp = displacement_stats(&design);
    println!("legal placement:        {}", report.is_legal());
    println!(
        "average displacement:   {:.3} rows (S_am, Eq. 2)",
        disp.average
    );
    println!("max displacement:       {:.3} rows", disp.max);
    println!(
        "software runtime:       {:.3} ms (host-only MGL run)",
        outcome.software.total.as_secs_f64() * 1e3
    );
    println!(
        "estimated FLEX runtime: {:.3} ms  ({:.2}x speedup)",
        outcome.timing.total.as_secs_f64() * 1e3,
        outcome.timing.speedup_vs_software
    );
    println!(
        "FPGA resources:         {} LUTs, {} FFs, {} BRAMs, {} DSPs",
        outcome.resources.luts,
        outcome.resources.ffs,
        outcome.resources.brams,
        outcome.resources.dsps
    );
    assert!(
        report.is_legal(),
        "quickstart must produce a legal placement"
    );
}
