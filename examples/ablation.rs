//! Reproduce the Fig. 8 / Fig. 10 style ablations on a single design: toggle FLEX's
//! optimizations one by one (SACS, multi-granularity pipelining, 2-parallel FOP PEs, task
//! assignment) and print the normalized speedups of the FPGA-side FOP time.
//!
//! Every run goes through the unified `EngineKind::Flex` factory; the FPGA-side timings come
//! from the report's typed `details` extension.
//!
//! Run with `cargo run --release --example ablation`.

use flex::core::accelerator::FlexOutcome;
use flex::core::config::{FlexConfig, TaskAssignment};
use flex::core::session::EngineKind;
use flex::placement::benchmark::{generate, BenchmarkSpec};

fn run(label: &str, cfg: &FlexConfig, seed: u64, baseline_fpga: Option<f64>) -> f64 {
    let mut design = generate(&BenchmarkSpec::medium("ablation", seed).scaled(0.4));
    let report = EngineKind::Flex.build(cfg).legalize(&mut design);
    assert!(report.legal, "{label}: illegal result");
    let out: &FlexOutcome = report.details().expect("flex details");
    let fpga = out.timing.fpga_time.as_secs_f64();
    let speedup = baseline_fpga.map(|b| b / fpga).unwrap_or(1.0);
    println!(
        "{:<36} fpga-side {:>9.3} ms   total {:>9.3} ms   speedup vs baseline {:>5.2}x",
        label,
        fpga * 1e3,
        out.timing.total.as_secs_f64() * 1e3,
        speedup
    );
    fpga
}

fn total_ms(cfg: &FlexConfig, seed: u64) -> f64 {
    let mut d = generate(&BenchmarkSpec::medium("ablation-ta", seed).scaled(0.4));
    let report = EngineKind::Flex.build(cfg).legalize(&mut d);
    let out: &FlexOutcome = report.details().expect("flex details");
    out.timing.total.as_secs_f64() * 1e3
}

fn main() {
    let seed = 99;
    println!("Fig. 8 style ablation (normalized FPGA-side speedup):");
    let base = run(
        "Normal-Pipeline (original shifting)",
        &FlexConfig::normal_pipeline_baseline(),
        seed,
        None,
    );
    run("+ SACS", &FlexConfig::with_sacs_only(), seed, Some(base));
    run(
        "+ Multi-Granularity-Pipeline",
        &FlexConfig::with_multi_granularity(),
        seed,
        Some(base),
    );
    run(
        "+ 2-parallel FOP PEs (full FLEX)",
        &FlexConfig::flex(),
        seed,
        Some(base),
    );

    println!();
    println!("Fig. 10 style task-assignment ablation (total estimated runtime):");
    let flex_ms = total_ms(&FlexConfig::flex(), seed);
    let offload_ms = total_ms(
        &FlexConfig::flex().with_assignment(TaskAssignment::FopAndUpdateOnFpga),
        seed,
    );
    println!("assign (d) on FPGA, (e) on CPU : {flex_ms:>9.3} ms");
    println!(
        "assign (d) and (e) on FPGA     : {:>9.3} ms   (FLEX advantage {:.2}x)",
        offload_ms,
        offload_ms / flex_ms
    );
}
